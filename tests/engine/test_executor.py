"""Tests for the data-driven executor (repro.engine.executor)."""

import pytest

from repro.engine.events import XferEvent, XformEvent
from repro.engine.executor import ExecutionError, WorkflowRunner, run_workflow
from repro.provenance.trace import TraceBuilder
from repro.values.index import Index
from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import PortRef

from tests.conftest import build_diamond_workflow, build_fig3_workflow


class TestBasicExecution:
    def test_diamond_outputs(self):
        result = run_workflow(build_diamond_workflow(), {"size": 2})
        assert result.outputs["out"] == [
            ["item-0-a+item-0-b", "item-0-a+item-1-b"],
            ["item-1-a+item-0-b", "item-1-a+item-1-b"],
        ]

    def test_port_values_recorded(self):
        result = run_workflow(build_diamond_workflow(), {"size": 2})
        assert result.port_values[PortRef("GEN", "list")] == ["item-0", "item-1"]
        assert result.port_values[PortRef("A", "y")] == ["item-0-a", "item-1-a"]

    def test_output_accessor(self):
        result = run_workflow(build_diamond_workflow(), {"size": 1})
        assert result.output("out") == [["item-0-a+item-0-b"]]
        with pytest.raises(ExecutionError):
            result.output("missing")

    def test_unknown_input_rejected(self):
        with pytest.raises(ExecutionError, match="unknown workflow input"):
            run_workflow(build_diamond_workflow(), {"nope": 1})

    def test_strict_depth_check(self):
        flow = (
            DataflowBuilder("wf")
            .input("v", "list(string)")
            .output("w", "list(string)")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:v", "P:x")
            .arc("P:y", "wf:w")
            .build()
        )
        with pytest.raises(ExecutionError, match="depth"):
            run_workflow(flow, {"v": "atom"})

    def test_strict_check_can_be_disabled(self):
        flow = (
            DataflowBuilder("wf")
            .input("v", "list(string)")
            .output("w", "list(string)")
            .processor("P", inputs=[("x", "list(string)")],
                       outputs=[("y", "list(string)")], operation="identity")
            .arc("wf:v", "P:x")
            .arc("P:y", "wf:w")
            .build()
        )
        runner = WorkflowRunner()
        result = runner.run(flow, {"v": ["a"]}, strict_inputs=False)
        assert result.outputs["w"] == ["a"]

    def test_default_values_for_unconnected_inputs(self):
        flow = (
            DataflowBuilder("wf")
            .output("w", "string")
            .processor(
                "P",
                inputs=[("x", "string")],
                outputs=[("y", "string")],
                operation="tag",
                config={"suffix": "!", "defaults": {"x": "fallback"}},
            )
            .arc("P:y", "wf:w")
            .build()
        )
        assert run_workflow(flow, {}).outputs["w"] == "fallback!"

    def test_missing_operation_rejected(self):
        flow = (
            DataflowBuilder("wf")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")])
            .build()
        )
        with pytest.raises(ExecutionError, match="no operation"):
            run_workflow(flow, {})

    def test_runner_caches_analysis(self):
        runner = WorkflowRunner()
        flow = build_diamond_workflow()
        first = runner.analysis_for(flow)
        second = runner.analysis_for(flow)
        assert first is second


class TestTraceEmission:
    def capture(self, flow, inputs):
        builder = TraceBuilder("t", flow.name)
        run_workflow(flow, inputs, listener=builder)
        return builder.trace

    def test_xform_count_diamond(self):
        trace = self.capture(build_diamond_workflow(), {"size": 2})
        by_processor = {}
        for event in trace.xforms:
            by_processor.setdefault(event.processor, []).append(event)
        assert len(by_processor["GEN"]) == 1
        assert len(by_processor["A"]) == 2
        assert len(by_processor["B"]) == 2
        assert len(by_processor["F"]) == 4

    def test_xform_instance_indices(self):
        trace = self.capture(build_diamond_workflow(), {"size": 2})
        f_events = trace.instances_of("F")
        qs = sorted(e.outputs[0].index for e in f_events)
        assert qs == [Index(0, 0), Index(0, 1), Index(1, 0), Index(1, 1)]

    def test_xform_input_fragments(self):
        trace = self.capture(build_diamond_workflow(), {"size": 2})
        for event in trace.instances_of("F"):
            fragments = {b.port: b.index for b in event.inputs}
            assert fragments["a"] + fragments["b"] == event.outputs[0].index

    def test_xfer_granularity_follows_consumer(self):
        trace = self.capture(build_diamond_workflow(), {"size": 2})
        into_a = [e for e in trace.xfers if e.sink.node == "A"]
        # A iterates per element: one transfer per element.
        assert sorted(e.sink.index for e in into_a) == [Index(0), Index(1)]
        into_gen = [e for e in trace.xfers if e.sink.node == "GEN"]
        # GEN consumes the size whole.
        assert [e.sink.index for e in into_gen] == [Index()]

    def test_workflow_output_transfer_recorded(self):
        trace = self.capture(build_diamond_workflow(), {"size": 1})
        to_out = [e for e in trace.xfers if e.sink.node == "wf"]
        assert len(to_out) == 1
        assert to_out[0].source == to_out[0].sink.__class__(
            PortRef("F", "y"), Index(), value=to_out[0].source.value
        ) or to_out[0].source.node == "F"

    def test_xfer_identity_on_index(self):
        trace = self.capture(build_diamond_workflow(), {"size": 3})
        for event in trace.xfers:
            assert event.source.index == event.sink.index

    def test_fig3_trace_matches_paper(self):
        """Events (1) and (2) plus the n*m P-instances of Section 2.3."""
        flow = build_fig3_workflow()
        builder = TraceBuilder("t", "fig3")
        run_workflow(
            flow,
            {"v": ["v0", "v1", "v2"], "w": "w", "c": ["c0"]},
            listener=builder,
        )
        trace = builder.trace
        q_events = trace.instances_of("Q")
        assert len(q_events) == 3  # one per element of v
        r_events = trace.instances_of("R")
        assert len(r_events) == 1  # whole-value, event (2)
        assert r_events[0].inputs[0].index == Index()
        p_events = trace.instances_of("P")
        # R emits a width-3 list; |a| * |b| = 3 * 3.
        assert len(p_events) == 9
        for event in p_events:
            by_port = {b.port: b.index for b in event.inputs}
            assert len(by_port["X1"]) == 1
            assert by_port["X2"] == Index()
            assert len(by_port["X3"]) == 1
