"""Tests for provenance event types (repro.engine.events)."""

import pytest

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.values.index import Index
from repro.workflow.model import PortRef


class TestBinding:
    def test_identity_ignores_value(self):
        left = Binding(PortRef("P", "X"), Index(1), value="a")
        right = Binding(PortRef("P", "X"), Index(1), value="b")
        assert left == right
        assert hash(left) == hash(right)

    def test_identity_includes_index(self):
        left = Binding(PortRef("P", "X"), Index(1))
        right = Binding(PortRef("P", "X"), Index(2))
        assert left != right

    def test_key_triple(self):
        binding = Binding(PortRef("P", "X"), Index(1, 2), value="v")
        assert binding.key() == ("P", "X", "1.2")

    def test_accessors(self):
        binding = Binding(PortRef("P", "X"), Index())
        assert binding.node == "P"
        assert binding.port == "X"

    def test_str(self):
        assert str(Binding(PortRef("P", "X"), Index(0, 1))) == "<P:X[0.1]>"


class TestXformEvent:
    def test_valid_event(self):
        event = XformEvent(
            "P",
            inputs=(Binding(PortRef("P", "X"), Index(0)),),
            outputs=(Binding(PortRef("P", "Y"), Index(0)),),
        )
        assert event.processor == "P"
        assert "<P:X[0]> -> <P:Y[0]>" == str(event)

    def test_foreign_binding_rejected(self):
        with pytest.raises(ValueError, match="does not belong"):
            XformEvent(
                "P",
                inputs=(Binding(PortRef("Q", "X"), Index()),),
                outputs=(),
            )


class TestXferEvent:
    def test_str(self):
        event = XferEvent(
            Binding(PortRef("P", "Y"), Index(1)),
            Binding(PortRef("Q", "X"), Index(1)),
        )
        assert str(event) == "<P:Y[1]> -> <Q:X[1]>"
