"""Tests for iteration strategy trees (repro.strategy)."""

import pytest

from repro.engine.iteration import IterationError, PortValue, evaluate
from repro.strategy import (
    Combinator,
    PortLeaf,
    StrategyError,
    build_struct,
    fragment_offsets,
    iterate_struct,
    node_level,
    parse_strategy,
    strategy_to_spec,
)
from repro.values.index import Index


class TestParsing:
    def test_sugar_cross(self):
        node = parse_strategy("cross", ["a", "b"])
        assert node == Combinator("cross", (PortLeaf("a"), PortLeaf("b")))

    def test_sugar_dot(self):
        node = parse_strategy("dot", ["a"])
        assert node == Combinator("dot", (PortLeaf("a"),))

    def test_expression(self):
        node = parse_strategy(
            {"cross": [{"dot": ["x1", "x2"]}, "x3"]}, ["x1", "x2", "x3"]
        )
        assert node == Combinator(
            "cross",
            (Combinator("dot", (PortLeaf("x1"), PortLeaf("x2"))), PortLeaf("x3")),
        )

    def test_roundtrip_via_spec(self):
        spec = {"cross": [{"dot": ["x1", "x2"]}, "x3"]}
        node = parse_strategy(spec, ["x1", "x2", "x3"])
        assert strategy_to_spec(node) == spec

    def test_unknown_sugar_rejected(self):
        with pytest.raises(StrategyError, match="unknown iteration strategy"):
            parse_strategy("zip", ["a"])

    def test_unknown_combinator_rejected(self):
        with pytest.raises(StrategyError, match="unknown combinator"):
            parse_strategy({"join": ["a"]}, ["a"])

    def test_missing_port_rejected(self):
        with pytest.raises(StrategyError, match="does not mention"):
            parse_strategy({"cross": ["a"]}, ["a", "b"])

    def test_unknown_port_rejected(self):
        with pytest.raises(StrategyError, match="unknown port"):
            parse_strategy({"cross": ["a", "zz"]}, ["a"])

    def test_duplicate_port_rejected(self):
        with pytest.raises(StrategyError, match="more than once"):
            parse_strategy({"cross": ["a", "a"]}, ["a"])

    def test_empty_combinator_rejected(self):
        with pytest.raises(StrategyError, match="no children"):
            parse_strategy({"cross": []}, [])

    def test_multi_key_node_rejected(self):
        with pytest.raises(StrategyError, match="exactly one key"):
            parse_strategy({"cross": ["a"], "dot": ["b"]}, ["a", "b"])

    def test_malformed_node_rejected(self):
        with pytest.raises(StrategyError, match="malformed"):
            parse_strategy({"cross": [42]}, ["a"])


class TestLevels:
    def test_cross_sums(self):
        node = parse_strategy("cross", ["a", "b", "c"])
        assert node_level(node, {"a": 1, "b": 0, "c": 2}) == 3

    def test_dot_takes_max(self):
        node = parse_strategy("dot", ["a", "b"])
        assert node_level(node, {"a": 1, "b": 1}) == 1

    def test_dot_broadcast_children_allowed(self):
        node = parse_strategy("dot", ["a", "b"])
        assert node_level(node, {"a": 2, "b": 0}) == 2

    def test_dot_unequal_levels_rejected(self):
        node = parse_strategy("dot", ["a", "b"])
        with pytest.raises(StrategyError, match="equal positive mismatches"):
            node_level(node, {"a": 2, "b": 1})

    def test_nested_expression_level(self):
        node = parse_strategy(
            {"cross": [{"dot": ["x1", "x2"]}, "x3"]}, ["x1", "x2", "x3"]
        )
        assert node_level(node, {"x1": 1, "x2": 1, "x3": 1}) == 2

    def test_dot_of_cross_groups(self):
        node = parse_strategy(
            {"dot": [{"cross": ["x1", "x2"]}, "x3"]}, ["x1", "x2", "x3"]
        )
        # cross(x1, x2) has level 2; x3 must match it.
        assert node_level(node, {"x1": 1, "x2": 1, "x3": 2}) == 2


class TestFragmentOffsets:
    def test_flat_cross(self):
        node = parse_strategy("cross", ["a", "b", "c"])
        assert fragment_offsets(node, {"a": 1, "b": 0, "c": 2}) == {
            "a": (0, 1), "b": (1, 0), "c": (1, 2),
        }

    def test_flat_dot_shares_offset(self):
        node = parse_strategy("dot", ["a", "b"])
        assert fragment_offsets(node, {"a": 2, "b": 2}) == {
            "a": (0, 2), "b": (0, 2),
        }

    def test_cross_of_dot_group(self):
        node = parse_strategy(
            {"cross": [{"dot": ["x1", "x2"]}, "x3"]}, ["x1", "x2", "x3"]
        )
        assert fragment_offsets(node, {"x1": 1, "x2": 1, "x3": 1}) == {
            "x1": (0, 1), "x2": (0, 1), "x3": (1, 1),
        }

    def test_dot_of_cross_group(self):
        node = parse_strategy(
            {"dot": [{"cross": ["x1", "x2"]}, "x3"]}, ["x1", "x2", "x3"]
        )
        assert fragment_offsets(node, {"x1": 1, "x2": 1, "x3": 2}) == {
            "x1": (0, 1), "x2": (1, 1), "x3": (0, 2),
        }


class TestStructEvaluation:
    def test_cross_struct_leaves(self):
        node = parse_strategy("cross", ["a", "b"])
        struct = build_struct(
            node, {"a": (["a0", "a1"], 1), "b": (["b0"], 1)}
        )
        leaves = list(iterate_struct(struct))
        assert [(str(q), leaf["a"][0], leaf["b"][0]) for q, leaf in leaves] == [
            ("Index(0, 0)", "a0", "b0"),
            ("Index(1, 0)", "a1", "b0"),
        ]

    def test_dot_struct_zips(self):
        node = parse_strategy("dot", ["a", "b"])
        struct = build_struct(
            node, {"a": (["a0", "a1"], 1), "b": (["b0", "b1"], 1)}
        )
        leaves = list(iterate_struct(struct))
        assert [(leaf["a"][0], leaf["b"][0]) for _, leaf in leaves] == [
            ("a0", "b0"), ("a1", "b1"),
        ]

    def test_dot_length_mismatch_rejected(self):
        node = parse_strategy("dot", ["a", "b"])
        with pytest.raises(StrategyError, match="equal list lengths"):
            build_struct(node, {"a": (["a0"], 1), "b": (["b0", "b1"], 1)})

    def test_atomic_under_iteration_rejected(self):
        node = parse_strategy("cross", ["a"])
        with pytest.raises(StrategyError, match="atomic"):
            build_struct(node, {"a": ("atom", 1)})


class TestStructHelpers:
    def test_map_struct_preserves_nesting(self):
        from repro.strategy import map_struct

        struct = [[{"a": 1}], [{"a": 2}, {"a": 3}]]
        mapped = map_struct(struct, lambda leaf: leaf["a"] * 10)
        assert mapped == [[10], [20, 30]]

    def test_map_struct_on_bare_leaf(self):
        from repro.strategy import map_struct

        assert map_struct({"a": 5}, lambda leaf: leaf["a"]) == 5

    def test_iterate_struct_orders_leaves(self):
        from repro.strategy import iterate_struct

        struct = [[{"k": "a"}], [{"k": "b"}, {"k": "c"}]]
        pairs = list(iterate_struct(struct))
        assert [(q.encode(), leaf["k"]) for q, leaf in pairs] == [
            ("0.0", "a"), ("1.0", "b"), ("1.1", "c"),
        ]


class TestEvaluateWithExpressions:
    def test_cross_of_dot(self):
        """zip(x1, x2) crossed with x3: output[i][j] = (x1[i], x2[i], x3[j])."""
        result = evaluate(
            lambda args: {"y": f"{args['x1']}{args['x2']}{args['x3']}"},
            [
                PortValue("x1", ["a", "b"], 1),
                PortValue("x2", ["1", "2"], 1),
                PortValue("x3", ["X", "Y", "Z"], 1),
            ],
            ["y"],
            strategy={"cross": [{"dot": ["x1", "x2"]}, "x3"]},
        )
        assert result.level == 2
        assert result.outputs["y"] == [
            ["a1X", "a1Y", "a1Z"],
            ["b2X", "b2Y", "b2Z"],
        ]

    def test_cross_of_dot_fragments_are_contiguous_slices(self):
        result = evaluate(
            lambda args: {"y": 0},
            [
                PortValue("x1", ["a", "b"], 1),
                PortValue("x2", ["1", "2"], 1),
                PortValue("x3", ["X", "Y"], 1),
            ],
            ["y"],
            strategy={"cross": [{"dot": ["x1", "x2"]}, "x3"]},
        )
        for inst in result.instances:
            assert inst.fragment("x1") == inst.q.head(1)
            assert inst.fragment("x2") == inst.q.head(1)
            assert inst.fragment("x3") == inst.q.tail_from(1)

    def test_dot_of_cross(self):
        """cross(x1, x2) zipped with a depth-2 x3."""
        result = evaluate(
            lambda args: {"y": f"{args['x1']}{args['x2']}{args['x3']}"},
            [
                PortValue("x1", ["a", "b"], 1),
                PortValue("x2", ["1", "2", "3"], 1),
                PortValue("x3", [["p", "q", "r"], ["s", "t", "u"]], 2),
            ],
            ["y"],
            strategy={"dot": [{"cross": ["x1", "x2"]}, "x3"]},
        )
        assert result.level == 2
        assert result.outputs["y"] == [
            ["a1p", "a2q", "a3r"],
            ["b1s", "b2t", "b3u"],
        ]

    def test_dot_of_cross_shape_mismatch_rejected(self):
        with pytest.raises(IterationError):
            evaluate(
                lambda args: {"y": 0},
                [
                    PortValue("x1", ["a", "b"], 1),
                    PortValue("x2", ["1"], 1),
                    PortValue("x3", [["p", "q"], ["r", "s"]], 2),
                ],
                ["y"],
                strategy={"dot": [{"cross": ["x1", "x2"]}, "x3"]},
            )

    def test_expression_with_non_iterated_port(self):
        result = evaluate(
            lambda args: {"y": f"{args['x1']}{args['k']}"},
            [PortValue("x1", ["a", "b"], 1), PortValue("k", "!", 0)],
            ["y"],
            strategy={"cross": ["x1", "k"]},
        )
        assert result.outputs["y"] == ["a!", "b!"]
        for inst in result.instances:
            assert inst.fragment("k") == Index()


class TestExpressionWorkflowsEndToEnd:
    """Strategy-tree processors run inside full workflows, and both lineage
    strategies agree on their traces."""

    def _flow(self):
        from repro.workflow.builder import DataflowBuilder

        return (
            DataflowBuilder("wf")
            .input("names", "list(string)")
            .input("codes", "list(string)")
            .input("tags", "list(string)")
            .output("out", "list(list(string))")
            .processor(
                "Z",
                inputs=[
                    ("x1", "string"), ("x2", "string"), ("x3", "string"),
                ],
                outputs=[("y", "string")],
                operation="synth_value",
                iteration={"cross": [{"dot": ["x1", "x2"]}, "x3"]},
                config={"out": "y", "out_depth": 0, "salt": "Z"},
            )
            .arcs(
                ("wf:names", "Z:x1"),
                ("wf:codes", "Z:x2"),
                ("wf:tags", "Z:x3"),
                ("Z:y", "wf:out"),
            )
            .build()
        )

    def test_static_layout_matches_trace(self):
        from repro.provenance.capture import capture_run
        from repro.query.projection import project_output_index
        from repro.workflow.depths import propagate_depths

        flow = self._flow()
        captured = capture_run(
            flow,
            {"names": ["n0", "n1"], "codes": ["c0", "c1"], "tags": ["t0"]},
        )
        analysis = propagate_depths(flow)
        assert analysis.iteration_level("Z") == 2
        for event in captured.trace.xforms:
            projected = dict(
                project_output_index(analysis, "Z", event.outputs[0].index)
            )
            recorded = {b.port: b.index for b in event.inputs}
            assert projected == recorded

    def test_lineage_strategies_agree(self):
        from repro.provenance.capture import capture_run
        from repro.provenance.store import TraceStore
        from repro.query.base import LineageQuery
        from repro.query.indexproj import IndexProjEngine
        from repro.query.naive import NaiveEngine

        flow = self._flow()
        captured = capture_run(
            flow,
            {"names": ["n0", "n1"], "codes": ["c0", "c1"],
             "tags": ["t0", "t1", "t2"]},
        )
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            query = LineageQuery.create("wf", "out", [1, 2], ["Z"])
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, flow).lineage(
                captured.run_id, query
            )
            assert naive.binding_keys() == indexproj.binding_keys()
            # Zip group shares index 1; the crossed port picks index 2.
            assert sorted(b.key() for b in indexproj.bindings) == [
                ("Z", "x1", "1"), ("Z", "x2", "1"), ("Z", "x3", "2"),
            ]

    def test_invalid_expression_rejected_at_definition(self):
        from repro.workflow.builder import DataflowBuilder
        from repro.workflow.model import WorkflowError

        with pytest.raises(WorkflowError, match="invalid iteration strategy"):
            (
                DataflowBuilder("wf")
                .processor(
                    "Z",
                    inputs=[("a", "string")],
                    outputs=[("y", "string")],
                    operation="identity",
                    iteration={"cross": ["a", "ghost"]},
                )
                .build()
            )

    def test_expression_serializes(self):
        from repro.workflow import serialize

        flow = self._flow()
        restored = serialize.loads(serialize.dumps(flow))
        assert restored.processor("Z").iteration == {
            "cross": [{"dot": ["x1", "x2"]}, "x3"]
        }
