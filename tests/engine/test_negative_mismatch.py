"""Integration tests for negative depth mismatches (singleton wrapping).

When a value is *shallower* than the declared port depth, "no iteration
occurs at all.  Instead, the mismatch is dealt with by nesting a value v
within d_i new lists, creating a d_i-deep singleton" (Def. 2 commentary).
These tests exercise that path through the full stack — engine, trace,
and both query strategies.
"""

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values.index import Index
from repro.workflow.builder import DataflowBuilder
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef


def build_flow():
    """An atomic workflow input feeding a list-typed counting port."""
    return (
        DataflowBuilder("wf")
        .input("one", "string")
        .output("n", "integer")
        .processor(
            "counter",
            inputs=[("x", "list(string)")],   # declares depth 1 ...
            outputs=[("y", "integer")],
            operation="count",
        )
        .arc("wf:one", "counter:x")           # ... receives depth 0
        .arc("counter:y", "wf:n")
        .build()
    )


class TestNegativeMismatch:
    def test_static_analysis(self):
        analysis = propagate_depths(build_flow())
        assert analysis.mismatch(PortRef("counter", "x")) == -1
        assert analysis.iteration_level("counter") == 0
        layout = analysis.fragment_layout("counter")
        assert [(f.port, f.length) for f in layout] == [("x", 0)]

    def test_execution_wraps_singleton(self):
        captured = capture_run(build_flow(), {"one": "solo"})
        # count sees ["solo"]: one leaf.
        assert captured.outputs["n"] == 1

    def test_trace_binds_whole_value(self):
        captured = capture_run(build_flow(), {"one": "solo"})
        events = captured.trace.instances_of("counter")
        assert len(events) == 1
        assert events[0].inputs[0].index == Index()
        # The recorded argument is the wrapped value the instance consumed.
        assert events[0].inputs[0].value == ["solo"]

    def test_lineage_through_wrapped_port(self):
        flow = build_flow()
        captured = capture_run(flow, {"one": "solo"})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            query = LineageQuery.create("wf", "n", (), ["counter"])
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, flow).lineage(
                captured.run_id, query
            )
            assert naive.binding_keys() == indexproj.binding_keys()
            assert [b.key() for b in naive.bindings] == [("counter", "x", "")]

    def test_deep_wrap(self):
        flow = (
            DataflowBuilder("wf")
            .input("one", "string")
            .output("n", "integer")
            .processor(
                "counter",
                inputs=[("x", "list(list(string))")],
                outputs=[("y", "integer")],
                operation="count",
            )
            .arc("wf:one", "counter:x")
            .arc("counter:y", "wf:n")
            .build()
        )
        analysis = propagate_depths(flow)
        assert analysis.mismatch(PortRef("counter", "x")) == -2
        captured = capture_run(flow, {"one": "solo"})
        assert captured.outputs["n"] == 1
        assert captured.trace.instances_of("counter")[0].inputs[0].value == [
            ["solo"]
        ]
