"""Moderate-scale end-to-end integration: the whole pipeline at once.

A single test that exercises generation, execution, storage, and both
query strategies at a size where the paper's asymptotics are visible —
the smoke-at-scale check that everything composes, kept fast enough for
the regular suite (a few seconds).
"""

from repro.bench.harness import prepare_store
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import focused_query, unfocused_query


class TestModerateScale:
    LENGTH = 60
    LIST_SIZE = 20

    def test_full_pipeline_invariants(self):
        prepared = prepare_store(self.LENGTH, self.LIST_SIZE, runs=1,
                                 cache=False)
        try:
            store, flow = prepared.store, prepared.flow
            run_id = prepared.run_ids[0]

            # Trace size: chains contribute 2*l*d instances, the final
            # cross product d^2.
            stats = store.statistics()
            expected_instances = 2 * self.LENGTH * self.LIST_SIZE + (
                self.LIST_SIZE ** 2
            ) + 1
            assert stats["xform_events"] == expected_instances

            naive = NaiveEngine(store)
            indexproj = IndexProjEngine(store, flow)

            # Focused query: identical answers; NI pays ~8 lookups per
            # chain step, INDEXPROJ exactly one.
            query = focused_query()
            ni = naive.lineage(run_id, query)
            ip = indexproj.lineage(run_id, query)
            assert ni.binding_keys() == ip.binding_keys()
            assert ip.stats.queries == 1
            assert ni.stats.queries == 8 * self.LENGTH + 12

            # Unfocused query: still identical; INDEXPROJ touches one
            # lookup per focus input port (2l chain ports + gen + final*2).
            uq = unfocused_query(flow)
            ni_u = naive.lineage(run_id, uq)
            ip_u = indexproj.lineage(run_id, uq)
            assert ni_u.binding_keys() == ip_u.binding_keys()
            assert ip_u.stats.queries == 2 * self.LENGTH + 3

            # Partial-coverage query over a whole output row.
            row_query = LineageQuery.create(
                "2TO1_FINAL", "y", [7], ["CHAIN1_30", "CHAIN2_30"]
            )
            ni_row = naive.lineage(run_id, row_query)
            ip_row = indexproj.lineage(run_id, row_query)
            assert ni_row.binding_keys() == ip_row.binding_keys()
            keys = sorted(b.key() for b in ip_row.bindings)
            assert keys[0] == ("CHAIN1_30", "x", "7")
            assert len(keys) == 1 + self.LIST_SIZE  # one + whole other chain
        finally:
            prepared.close()

    def test_coarse_xfer_mode_agrees_at_scale(self):
        from repro.engine.executor import WorkflowRunner
        from repro.provenance.capture import capture_run
        from repro.provenance.store import TraceStore
        from repro.testbed.generator import chain_product_workflow

        flow = chain_product_workflow(30)
        answers = {}
        for granularity in ("fine", "coarse"):
            runner = WorkflowRunner(xfer_granularity=granularity)
            captured = capture_run(flow, {"ListSize": 10}, runner=runner)
            with TraceStore() as store:
                store.insert_trace(captured.trace)
                result = NaiveEngine(store).lineage(
                    captured.run_id, focused_query()
                )
                answers[granularity] = result.binding_keys()
        assert answers["fine"] == answers["coarse"]
