"""CLI regression tests for the global flags: --version, --profile,
--verbose/--quiet, and the stats-command sidecar integration."""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.cli import main
from repro.obs.export import (
    load_persisted_counters,
    metrics_sidecar_path,
    validate_export,
)


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro-prov" in out
        assert __version__ in out


class TestProfileRun:
    def test_profile_run_prints_spans_and_metrics(self, tmp_path, capsys):
        db = str(tmp_path / "t.db")
        assert main(["--profile", "run", "--workload", "gk", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "== profile: span tree ==" in out
        assert "engine.run" in out
        assert "engine.fire" in out
        assert "== profile: metrics ==" in out
        assert "engine.xform_events" in out
        assert "store.writes" in out

    def test_unprofiled_run_prints_no_profile(self, tmp_path, capsys):
        db = str(tmp_path / "t.db")
        assert main(["run", "--workload", "gk", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "profile:" not in out
        assert not os.path.exists(metrics_sidecar_path(db))


class TestProfileQuery:
    @pytest.fixture
    def gk_db(self, tmp_path):
        db = str(tmp_path / "gk.db")
        assert main(["run", "--workload", "gk", "--db", db]) == 0
        return db

    def test_profile_query_span_tree(self, gk_db, capsys):
        capsys.readouterr()
        assert main([
            "--profile", "query", "--db", gk_db, "--workload", "gk",
            "--node", "genes2kegg", "--port", "commonPathways",
            "--index", "0", "--focus", "get_pathways_by_genes",
        ]) == 0
        out = capsys.readouterr().out
        assert "indexproj.plan" in out
        assert "cache=miss" in out
        assert "indexproj.execute" in out
        assert "store.reads" in out

    def test_sidecar_accumulates_and_stats_reports(self, gk_db, capsys):
        args = [
            "--profile", "query", "--db", gk_db, "--workload", "gk",
            "--node", "genes2kegg", "--port", "commonPathways",
            "--index", "0", "--focus", "get_pathways_by_genes",
        ]
        assert main(args) == 0
        assert main(args) == 0
        doc = load_persisted_counters(gk_db)
        assert doc["invocations"] == 2
        assert doc["counters"]["store.reads"] >= 2
        capsys.readouterr()
        assert main(["stats", "--db", gk_db]) == 0
        out = capsys.readouterr().out
        assert "persisted obs counters (2 profiled invocations):" in out
        assert "store.reads" in out

    def test_profile_export_document_is_valid(self, gk_db, tmp_path, capsys):
        export_path = str(tmp_path / "obs.json")
        assert main([
            "--profile", "--profile-export", export_path,
            "query", "--db", gk_db, "--workload", "gk",
            "--node", "genes2kegg", "--port", "commonPathways",
            "--index", "0", "--focus", "get_pathways_by_genes",
        ]) == 0
        with open(export_path, encoding="utf-8") as handle:
            document = json.load(handle)
        validate_export(document)
        assert document["meta"] == {"command": "query"}
        assert document["counters"]["store.reads"] >= 1
        assert any(
            span["name"] == "indexproj.plan" for span in document["spans"]
        )


class TestLogging:
    def test_default_level_is_info(self):
        main(["workloads"])
        assert logging.getLogger("repro").level == logging.INFO

    def test_verbose_and_quiet_levels(self):
        main(["--verbose", "workloads"])
        assert logging.getLogger("repro").level == logging.DEBUG
        main(["--quiet", "workloads"])
        assert logging.getLogger("repro").level == logging.ERROR

    def test_diagnostics_go_to_stderr_not_stdout(self, tmp_path, capsys):
        dot_path = str(tmp_path / "wf.dot")
        assert main(["export", "--workload", "gk", "--dot", dot_path]) == 0
        captured = capsys.readouterr()
        assert "wrote" not in captured.out
        assert f"wrote {dot_path}" in captured.err

    def test_quiet_suppresses_info_diagnostics(self, tmp_path, capsys):
        dot_path = str(tmp_path / "wf.dot")
        assert main(
            ["--quiet", "export", "--workload", "gk", "--dot", dot_path]
        ) == 0
        assert "wrote" not in capsys.readouterr().err

    def test_errors_still_logged_when_quiet(self, tmp_path, capsys):
        from repro.provenance.store import TraceStore

        db = str(tmp_path / "empty.db")
        TraceStore(db).close()
        assert main([
            "--quiet", "query", "--db", db, "--node", "P", "--port", "y",
            "--strategy", "naive",
        ]) == 1
        assert "no runs" in capsys.readouterr().err
