"""Tests for the integration façade (repro.service.ProvenanceService)."""

import pytest

from repro.service import ProvenanceService
from repro.testbed.workloads import genes2kegg_workload
from repro.workflow.model import WorkflowError

from tests.conftest import build_diamond_workflow


@pytest.fixture
def service():
    with ProvenanceService() as svc:
        svc.register_workflow(build_diamond_workflow())
        yield svc


class TestRegistrationAndRuns:
    def test_run_stores_trace(self, service):
        run_id = service.run("wf", {"size": 2})
        assert service.runs_of("wf") == [run_id]
        assert service.statistics()["runs"] == 1

    def test_unknown_workflow_rejected(self, service):
        with pytest.raises(WorkflowError, match="not registered"):
            service.run("ghost", {})
        with pytest.raises(WorkflowError):
            service.runs_of("ghost")

    def test_reregistration_is_idempotent(self, service):
        service.register_workflow(build_diamond_workflow())
        run_id = service.run("wf", {"size": 1})
        assert run_id in service.runs_of("wf")

    def test_statistics_counts_registrations(self, service):
        assert service.statistics()["registered_workflows"] == 1

    def test_custom_registry_workload(self):
        workload = genes2kegg_workload()
        with ProvenanceService() as svc:
            svc.register_workflow(workload.flow, registry=workload.registry)
            run_id = svc.run(workload.name, workload.inputs)
            result = svc.lineage(
                "lin(<genes2kegg:paths_per_gene[0]>, {get_pathways_by_genes})"
            )
            assert [
                b.key() for b in result.per_run[run_id].bindings
            ] == [("get_pathways_by_genes", "genes_id_list", "0")]


class TestQueries:
    def test_lineage_defaults_to_all_runs(self, service):
        first = service.run("wf", {"size": 2})
        second = service.run("wf", {"size": 2})
        result = service.lineage("lin(<wf:out[0.1]>, {A, B})")
        assert set(result.per_run) == {first, second}
        for answer in result.per_run.values():
            assert sorted(b.key() for b in answer.bindings) == [
                ("A", "x", "0"), ("B", "x", "1"),
            ]

    def test_lineage_accepts_query_objects(self, service):
        from repro.query.base import LineageQuery

        run_id = service.run("wf", {"size": 2})
        result = service.lineage(
            LineageQuery.create("F", "y", [1, 0], ["GEN"])
        )
        assert [b.key() for b in result.per_run[run_id].bindings] == [
            ("GEN", "size", "")
        ]

    def test_focus_override_on_text_queries(self, service):
        run_id = service.run("wf", {"size": 2})
        result = service.lineage("wf:out[0.0]", focus=["A"])
        assert [b.key() for b in result.per_run[run_id].bindings] == [
            ("A", "x", "0")
        ]

    def test_strategies_agree(self, service):
        service.run("wf", {"size": 3})
        query = "lin(<F:y[2.1]>, {A, B})"
        fast = service.lineage(query)
        naive = service.lineage(query, strategy="naive")
        batched = service.lineage(query, batched=True)
        for run_id in fast.per_run:
            keys = fast.per_run[run_id].binding_keys()
            assert naive.per_run[run_id].binding_keys() == keys
            assert batched.per_run[run_id].binding_keys() == keys

    def test_run_scope_restriction(self, service):
        first = service.run("wf", {"size": 2})
        service.run("wf", {"size": 2})
        result = service.lineage("lin(<wf:out[0.0]>, {A})", runs=[first])
        assert list(result.per_run) == [first]

    def test_query_for_unknown_node_rejected(self, service):
        with pytest.raises(WorkflowError, match="no registered workflow"):
            service.lineage("lin(<mystery:port[0]>, {A})")

    def test_impact(self, service):
        run_id = service.run("wf", {"size": 3})
        result = service.impact("A", "x", [1], focus=["F"])
        assert [b.key() for b in result.per_run[run_id].bindings] == [
            ("F", "y", "1.0"), ("F", "y", "1.1"), ("F", "y", "1.2"),
        ]

    def test_explain(self, service):
        service.run("wf", {"size": 2})
        service.run("wf", {"size": 2})
        explanation = service.explain("lin(<wf:out[0.0]>, {GEN})")
        assert explanation.runs == 2
        assert explanation.recommendation == "indexproj"

    def test_multiple_workflows_routed_by_node(self, service):
        workload = genes2kegg_workload()
        service.register_workflow(workload.flow, registry=workload.registry)
        diamond_run = service.run("wf", {"size": 2})
        gk_run = service.run(workload.name, workload.inputs)
        diamond_answer = service.lineage("lin(<F:y[0.0]>, {GEN})")
        gk_answer = service.lineage(
            "lin(<genes2kegg:commonPathways[]>, {flatten_gene_lists})"
        )
        assert list(diamond_answer.per_run) == [diamond_run]
        assert list(gk_answer.per_run) == [gk_run]


class TestErrorHandlingMode:
    def test_token_mode_service(self):
        from repro.engine.errors import is_error
        from repro.engine.processors import default_registry
        from repro.workflow.builder import DataflowBuilder

        registry = default_registry().extended()

        def explode(inputs, config):
            if inputs["x"] == "bad":
                raise RuntimeError("nope")
            return {"y": inputs["x"]}

        registry.register("explode", explode)
        flow = (
            DataflowBuilder("ef")
            .input("items", "list(string)")
            .output("out", "list(string)")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="explode")
            .arc("ef:items", "P:x")
            .arc("P:y", "ef:out")
            .build()
        )
        with ProvenanceService(error_handling="token") as svc:
            svc.register_workflow(flow, registry=registry)
            run_id = svc.run("ef", {"items": ["ok", "bad"]})
            result = svc.lineage("lin(<ef:out[1]>, {P})")
            culprit = result.per_run[run_id].bindings[0]
            assert culprit.value == "bad"


class TestDuplicateRunIds:
    """Regression: duplicate explicit run ids must be rejected up front.

    Previously ``ProvenanceService.run`` executed the whole workflow and
    only then tripped over the store's primary-key constraint, wasting the
    execution and surfacing a bare ``sqlite3.IntegrityError`` with no hint
    of which run collided.
    """

    def test_duplicate_run_id_raises_before_execution(self, service):
        from repro.provenance.store import DuplicateRunError

        calls = []
        original = service._runners["wf"].run

        def counting_run(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        service._runners["wf"].run = counting_run
        service.run("wf", {"size": 2}, run_id="dup")
        executed_before = len(calls)
        with pytest.raises(DuplicateRunError) as excinfo:
            service.run("wf", {"size": 2}, run_id="dup")
        # The workflow must NOT have executed for the rejected duplicate.
        assert len(calls) == executed_before
        assert excinfo.value.run_id == "dup"
        assert "dup" in str(excinfo.value)

    def test_duplicate_error_is_still_an_integrity_error(self, service):
        import sqlite3

        from repro.provenance.store import DuplicateRunError

        service.run("wf", {"size": 1}, run_id="r1")
        with pytest.raises(sqlite3.IntegrityError):
            service.run("wf", {"size": 1}, run_id="r1")
        assert issubclass(DuplicateRunError, sqlite3.IntegrityError)

    def test_duplicate_rejection_leaves_original_run_intact(self, service):
        from repro.provenance.store import DuplicateRunError

        service.run("wf", {"size": 2}, run_id="keep")
        before = service.store.record_count("keep")
        with pytest.raises(DuplicateRunError):
            service.run("wf", {"size": 3}, run_id="keep")
        assert service.store.record_count("keep") == before
        assert service.runs_of("wf") == ["keep"]

    def test_racing_duplicate_run_ids_admit_exactly_one(self, tmp_path):
        """Two threads racing the same explicit id: one wins, one loses."""
        import threading

        from repro.provenance.store import DuplicateRunError

        with ProvenanceService(str(tmp_path / "race.db")) as svc:
            svc.register_workflow(build_diamond_workflow())
            outcomes = []
            barrier = threading.Barrier(2)

            def contender():
                barrier.wait()
                try:
                    svc.run("wf", {"size": 2}, run_id="contested")
                    outcomes.append("won")
                except DuplicateRunError:
                    outcomes.append("lost")

            threads = [threading.Thread(target=contender) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(outcomes) == ["lost", "won"]
            assert svc.runs_of("wf") == ["contested"]
