"""Fault-injection tests: busy storms, mid-insert crashes, slow statements.

Each test arms the :class:`~repro.provenance.faults.FaultInjector` with an
exact budget and asserts both the store-level outcome (retry succeeded /
``StoreBusyError`` / all-or-nothing rollback) and the injector's counters,
so the failure paths of the concurrency code are covered deterministically
rather than left to scheduling luck.
"""

from __future__ import annotations

import threading

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.faults import FaultInjector, InjectedCrash
from repro.provenance.store import (
    DuplicateRunError,
    RetryPolicy,
    StoreBusyError,
    TraceStore,
)

from tests.conftest import build_diamond_workflow

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.0001, max_delay=0.001)


@pytest.fixture()
def captured():
    flow = build_diamond_workflow()
    return capture_run(flow, {"size": 3}, run_id="faulty-run")


# -- busy storms ---------------------------------------------------------


def test_busy_storm_within_budget_succeeds(tmp_path, captured):
    faults = FaultInjector()
    store = TraceStore(str(tmp_path / "t.db"), retry=FAST_RETRY, faults=faults)
    faults.inject_busy(FAST_RETRY.max_attempts - 1)
    store.insert_trace(captured.trace)
    assert faults.busy_raised == FAST_RETRY.max_attempts - 1
    assert store.has_run("faulty-run")
    assert store.record_count("faulty-run") > 0
    store.close()


def test_busy_storm_beyond_budget_raises_store_busy(tmp_path, captured):
    faults = FaultInjector()
    store = TraceStore(str(tmp_path / "t.db"), retry=FAST_RETRY, faults=faults)
    faults.inject_busy(FAST_RETRY.max_attempts + 5)
    with pytest.raises(StoreBusyError) as excinfo:
        store.insert_trace(captured.trace)
    assert excinfo.value.attempts == FAST_RETRY.max_attempts
    assert "busy" in str(excinfo.value).lower()
    assert not store.has_run("faulty-run")
    # The storm passes; the very same insert then goes through.
    faults.reset()
    store.insert_trace(captured.trace)
    assert store.has_run("faulty-run")
    store.close()


def test_busy_storm_exhaustion_keeps_cause(tmp_path, captured):
    faults = FaultInjector()
    store = TraceStore(str(tmp_path / "t.db"), retry=FAST_RETRY, faults=faults)
    faults.inject_busy(100)
    with pytest.raises(StoreBusyError) as excinfo:
        store.insert_trace(captured.trace)
    assert isinstance(excinfo.value.__cause__, Exception) or excinfo.value.cause
    store.close()


# -- crashes mid-insert --------------------------------------------------


@pytest.mark.parametrize("statements", [0, 1, 2, 5])
def test_crash_mid_insert_leaves_no_partial_run(tmp_path, captured, statements):
    faults = FaultInjector()
    store = TraceStore(str(tmp_path / "t.db"), retry=FAST_RETRY, faults=faults)
    faults.inject_crash_after(statements)
    with pytest.raises(InjectedCrash):
        store.insert_trace(captured.trace)
    assert faults.crashes == 1
    # All-or-nothing: nothing of the run survived the rollback.
    assert not store.has_run("faulty-run")
    assert store.record_count() == 0
    assert store.record_count("faulty-run") == 0
    # The run is re-insertable after the "restart".
    store.insert_trace(captured.trace)
    assert store.has_run("faulty-run")
    assert store.record_count("faulty-run") > 0
    store.close()


def test_crash_then_reinsert_answers_identically(tmp_path, captured):
    """A crashed-and-retried insert yields the same store as a clean one."""
    faults = FaultInjector()
    crashed = TraceStore(str(tmp_path / "a.db"), retry=FAST_RETRY, faults=faults)
    faults.inject_crash_after(2)
    with pytest.raises(InjectedCrash):
        crashed.insert_trace(captured.trace)
    crashed.insert_trace(captured.trace)

    clean = TraceStore(str(tmp_path / "b.db"))
    clean.insert_trace(captured.trace)

    assert crashed.record_count("faulty-run") == clean.record_count("faulty-run")
    assert crashed.load_trace("faulty-run").run_id == "faulty-run"
    crashed.close()
    clean.close()


def test_duplicate_insert_after_crash_recovery(tmp_path, captured):
    faults = FaultInjector()
    store = TraceStore(str(tmp_path / "t.db"), retry=FAST_RETRY, faults=faults)
    store.insert_trace(captured.trace)
    with pytest.raises(DuplicateRunError):
        store.insert_trace(captured.trace)
    # The failed duplicate attempt must not have clobbered the stored run.
    assert store.has_run("faulty-run")
    assert store.record_count("faulty-run") > 0
    store.close()


# -- slow statements: what concurrent readers observe mid-insert ---------


def test_readers_never_see_held_open_transaction(tmp_path, captured):
    """A writer stalled *inside* its transaction stays invisible to readers.

    The statement delay holds the insert transaction open for a while;
    reader threads polling throughout must either see no run at all or the
    complete run — never a partial record count.
    """
    faults = FaultInjector()
    store = TraceStore(str(tmp_path / "t.db"), retry=FAST_RETRY, faults=faults)
    clean = TraceStore(str(tmp_path / "probe.db"))
    clean.insert_trace(captured.trace)
    expected = clean.record_count("faulty-run")
    clean.close()

    faults.inject_statement_delay(0.01)
    observed: list = []
    errors: list = []
    done = threading.Event()

    def reader():
        while not done.is_set():
            if store.has_run("faulty-run"):
                count = store.record_count("faulty-run")
                observed.append(count)
                if count != expected:
                    errors.append(
                        AssertionError(
                            f"partial run visible: {count}/{expected} records"
                        )
                    )

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        store.insert_trace(captured.trace)
    finally:
        done.set()
        for thread in threads:
            thread.join()

    assert errors == []
    assert store.record_count("faulty-run") == expected
    store.close()
