"""Cache coherence under concurrency: readers race an ingesting writer.

The generation protocol's contract is *conservative coherence*: a cache
may miss unnecessarily, but it must never serve an answer that disagrees
with an uncached execution over the same store and run scope.  These
tests hammer that contract with parallel readers against a live writer,
and with injected busy storms to show that failed reads never poison
either cache level.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.provenance.faults import FaultInjector
from repro.provenance.store import RetryPolicy, StoreBusyError
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.0001, max_delay=0.001)


def _query():
    return LineageQuery.create("wf", "out", [1, 1], focus=["GEN", "A", "B"])


def canonical(result):
    return {
        run_id: sorted(
            (*b.key(), json.dumps(b.value, sort_keys=True, default=repr))
            for b in r.bindings
        )
        for run_id, r in result.per_run.items()
    }


def _service(tmp_path, **kwargs):
    service = ProvenanceService(str(tmp_path / "traces.db"), **kwargs)
    service.register_workflow(build_diamond_workflow())
    return service


class TestReadersVsWriter:
    def test_pinned_scope_answers_stable_under_ingest_storm(self, tmp_path):
        """Stored runs are immutable, so a pinned scope's answer can never
        change while a writer ingests *other* runs — warm or cold."""
        service = _service(tmp_path)
        scope = [service.run("wf", {"size": 2}) for _ in range(2)]
        reference = canonical(service.lineage(_query(), runs=scope))
        errors = []
        mismatches = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    result = service.lineage(_query(), runs=scope)
                    if canonical(result) != reference:
                        mismatches.append(canonical(result))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def writer():
            try:
                for _ in range(10):
                    service.run("wf", {"size": 3})
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert mismatches == []
        service.close()

    def test_no_stale_generation_vectors_served(self, tmp_path):
        """Every answer's generation vector must match the store's vector
        for its scope — runs are write-once here, so the per-run
        generations are exactly 1 and any other value is a stale serve."""
        service = _service(tmp_path)
        scope = [service.run("wf", {"size": 2}) for _ in range(2)]
        collected = []
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    collected.append(service.lineage(_query(), runs=scope))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for _ in range(8):
                    service.run("wf", {"size": 2})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert collected
        expected = service.store.generation_vector(scope)
        assert expected == (0, (1, 1))
        for result in collected:
            if result.generations is not None:
                assert result.generations == expected

    def test_default_scope_snapshots_are_coherent(self, tmp_path):
        """Readers over the default (all-runs) scope during an ingest
        storm: whatever scope each answer reflects, it must equal an
        uncached execution over exactly that scope."""
        service = _service(tmp_path)
        service.run("wf", {"size": 2})
        collected = []
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    collected.append(service.lineage(_query()))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for _ in range(8):
                    service.run("wf", {"size": 2})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        control_engine = IndexProjEngine(
            service.store, build_diamond_workflow()
        )
        for result in collected:
            scope = list(result.per_run)
            control = control_engine.lineage_multirun(scope, _query())
            assert canonical(result) == canonical(control)
        service.close()


class TestBusyStormsNeverPoison:
    def test_failed_query_leaves_cache_correct(self, tmp_path):
        faults = FaultInjector()
        service = _service(tmp_path, retry=FAST_RETRY, faults=faults)
        for _ in range(2):
            service.run("wf", {"size": 2})
        reference = canonical(service.lineage(_query(), cache=False))

        # Force real reads, then storm them beyond the retry budget.
        service.invalidate_caches()
        faults.inject_read_busy(FAST_RETRY.max_attempts + 10)
        with pytest.raises(StoreBusyError):
            service.lineage(_query())
        faults.reset()

        recovered = service.lineage(_query())
        assert canonical(recovered) == reference
        warm = service.lineage(_query())
        assert warm.from_cache is True
        assert canonical(warm) == reference
        service.close()

    def test_survivable_storm_populates_valid_entries(self, tmp_path):
        faults = FaultInjector()
        service = _service(tmp_path, retry=FAST_RETRY, faults=faults)
        for _ in range(2):
            service.run("wf", {"size": 2})
        reference = canonical(service.lineage(_query(), cache=False))
        service.invalidate_caches()
        # Within budget: the query retries through and caches its answer.
        faults.inject_read_busy(FAST_RETRY.max_attempts - 2)
        stormy = service.lineage(_query())
        assert canonical(stormy) == reference
        faults.reset()
        warm = service.lineage(_query())
        assert warm.from_cache is True
        assert canonical(warm) == reference
        service.close()

    def test_concurrent_readers_with_intermittent_busy(self, tmp_path):
        faults = FaultInjector()
        service = _service(tmp_path, retry=FAST_RETRY, faults=faults)
        scope = [service.run("wf", {"size": 2}) for _ in range(2)]
        reference = canonical(service.lineage(_query(), runs=scope))
        mismatches = []
        busy_errors = []
        unexpected = []

        def reader(salt):
            for i in range(20):
                if (i + salt) % 5 == 0:
                    service.invalidate_caches()
                    faults.inject_read_busy(1)  # one retry, then succeed
                try:
                    result = service.lineage(_query(), runs=scope)
                except StoreBusyError as exc:
                    busy_errors.append(exc)
                    continue
                except Exception as exc:  # pragma: no cover
                    unexpected.append(exc)
                    return
                if canonical(result) != reference:
                    mismatches.append(canonical(result))

        threads = [
            threading.Thread(target=reader, args=(salt,)) for salt in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert unexpected == []
        assert mismatches == []
        service.close()
