"""Shard fault injection: one bad shard must fail loudly, not quietly.

The scatter-gather contract under faults has four clauses, each pinned
here deterministically with the :class:`FaultInjector` armed on a single
shard of a :class:`~repro.storage.ShardedStore`:

* transient ``SQLITE_BUSY`` storms inside the retry budget are absorbed
  per shard and the merged answer is unaffected;
* storms beyond the budget (or a shard vanishing mid-query) surface as a
  structured :class:`~repro.storage.ShardError` that names the shard,
  its path, and the failing primitive — never a partial answer;
* a failed fan-out leaks no reader-pool slots: the very next query over
  the same pool succeeds;
* readers racing a live writer only ever observe complete runs.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.faults import FaultInjector
from repro.provenance.store import RetryPolicy, StoreBusyError, TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.storage import ShardError, ShardedStore

from tests.conftest import build_diamond_workflow
from tests.properties.conftest import canonical, query_pool

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.0001, max_delay=0.001)


class _Case:
    """One diamond workflow with its captures, sharded store + reference."""

    def __init__(self, tmp_path, num_shards=4, runs=6):
        self.flow = build_diamond_workflow()
        self.captured = [
            capture_run(self.flow, {"size": 3}, run_id=f"run-{i}")
            for i in range(runs)
        ]
        self.scope = [cap.run_id for cap in self.captured]
        self.store = ShardedStore(
            str(tmp_path / "shards"), num_shards=num_shards
        )
        self.single = TraceStore()
        for cap in self.captured:
            self.store.insert_trace(cap.trace)
            self.single.insert_trace(cap.trace)
        self.query = _first_query(self.flow)
        self.reference = canonical(
            IndexProjEngine(self.single, self.flow).lineage_multirun(
                self.scope, self.query
            )
        )

    def answer(self):
        return canonical(
            IndexProjEngine(self.store, self.flow).lineage_multirun_batched(
                self.scope, self.query
            )
        )

    def busy_shard(self):
        """Index of a shard that actually owns at least one scoped run."""
        return self.store.shard_of(self.scope[0])

    def close(self):
        self.store.close()
        self.single.close()


def _first_query(flow):
    class _Shim:
        pass

    shim = _Shim()
    shim.flow = flow
    return query_pool(shim)[0]


@pytest.fixture()
def case(tmp_path):
    c = _Case(tmp_path)
    yield c
    c.close()


def _arm(case, index):
    """Attach a fresh injector + fast retry to one shard, post-build."""
    faults = FaultInjector()
    case.store.shards[index].faults = faults
    case.store.shards[index].retry = FAST_RETRY
    return faults


# -- transient storms are absorbed per shard -----------------------------


def test_read_busy_within_budget_is_absorbed(case):
    index = case.busy_shard()
    faults = _arm(case, index)
    faults.inject_read_busy(FAST_RETRY.max_attempts - 1)
    assert case.answer() == case.reference
    assert faults.read_busy_raised == FAST_RETRY.max_attempts - 1


# -- storms beyond budget: structured error naming the shard -------------


def test_read_busy_beyond_budget_raises_shard_error(case):
    index = case.busy_shard()
    faults = _arm(case, index)
    faults.inject_read_busy(1000)
    with pytest.raises(ShardError) as excinfo:
        case.answer()
    err = excinfo.value
    assert err.shard == index
    assert err.path == case.store.shards[index].path
    assert isinstance(err.cause, StoreBusyError)
    message = str(err)
    assert f"shard {index}" in message
    assert err.path in message
    assert err.op in message
    # All-or-nothing: the storm passes and the same query is whole again.
    faults.reset()
    assert case.answer() == case.reference


def test_missing_shard_mid_query_raises_shard_error(case):
    index = case.busy_shard()
    case.store.shards[index].close()
    with pytest.raises(ShardError) as excinfo:
        case.answer()
    err = excinfo.value
    assert err.shard == index
    assert isinstance(err.cause, sqlite3.ProgrammingError)
    assert f"shard {index}" in str(err)


def test_write_fault_is_isolated_to_owning_shard(case):
    cap = capture_run(case.flow, {"size": 3}, run_id="late-run")
    index = case.store.shard_of("late-run")
    faults = _arm(case, index)
    faults.inject_busy(1000)
    with pytest.raises(ShardError) as excinfo:
        case.store.insert_trace(cap.trace)
    assert excinfo.value.shard == index
    assert excinfo.value.op == "insert_trace"
    # Nothing half-ingested: not in the shard, not in the manifest, and
    # the pre-fault answer is untouched.
    assert not case.store.has_run("late-run")
    assert "late-run" not in case.store.run_ids()
    assert case.answer() == case.reference
    faults.reset()
    case.store.insert_trace(cap.trace)
    assert case.store.has_run("late-run")


# -- failed fan-outs leak no pool slots ----------------------------------


def test_failed_scatter_leaks_no_pool_slots(case):
    index = case.busy_shard()
    faults = _arm(case, index)
    max_workers = case.store._pool._max_workers
    for _ in range(3 * max_workers):
        faults.inject_read_busy(1000)
        with pytest.raises(ShardError):
            case.answer()
    faults.reset()
    # Every slot must be back: the same pool serves a full fan-out.
    assert case.answer() == case.reference
    assert len(case.store._pool._threads) <= max_workers


# -- readers vs. a live writer -------------------------------------------


def test_readers_vs_live_writer_coherence(tmp_path):
    flow = build_diamond_workflow()
    captured = [
        capture_run(flow, {"size": 3}, run_id=f"run-{i}") for i in range(8)
    ]
    query = _first_query(flow)
    single = TraceStore()
    for cap in captured:
        single.insert_trace(cap.trace)
    per_run_reference = canonical(
        IndexProjEngine(single, flow).lineage_multirun(
            [c.run_id for c in captured], query
        )
    )
    single.close()

    store = ShardedStore(str(tmp_path / "shards"), num_shards=4)
    committed: list = []
    commit_lock = threading.Lock()
    errors: list = []
    done = threading.Event()

    def writer():
        try:
            for cap in captured:
                store.insert_trace(cap.trace)
                with commit_lock:
                    committed.append(cap.run_id)
        finally:
            done.set()

    def reader():
        engine = IndexProjEngine(store, flow)
        try:
            while True:
                with commit_lock:
                    scope = list(committed)
                if scope:
                    answer = canonical(
                        engine.lineage_multirun_batched(scope, query)
                    )
                    expected = {r: per_run_reference[r] for r in scope}
                    if answer != expected:
                        errors.append((scope, answer))
                        return
                if done.is_set():
                    return
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    wt = threading.Thread(target=writer)
    for t in threads:
        t.start()
    wt.start()
    wt.join(timeout=30)
    for t in threads:
        t.join(timeout=30)
    store.close()
    assert not errors
    assert len(committed) == len(captured)
