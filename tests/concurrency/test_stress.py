"""Stress test: concurrent writers and readers on one on-disk store.

The store's threading contract (see :mod:`repro.provenance.store`) says
writes serialize behind one lock while readers run lock-free on their own
WAL connections, and that a run is either fully visible or not at all.
This test exercises that contract under real contention — several writer
threads racing to insert hundreds of runs while reader threads hammer the
query path — and then checks the outcome against a sequential replay of
the exact same inserts.
"""

from __future__ import annotations

import threading

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine

from tests.conftest import build_diamond_workflow

WRITERS = 4
READERS = 8
RUNS = 200


@pytest.fixture(scope="module")
def captured_traces():
    """RUNS pre-captured diamond traces (capture once, reuse per test)."""
    flow = build_diamond_workflow()
    runs = [
        capture_run(flow, {"size": 3}, run_id=f"stress-{i:04d}")
        for i in range(RUNS)
    ]
    return flow, runs


def test_concurrent_writers_and_readers(tmp_path, captured_traces):
    flow, runs = captured_traces
    store = TraceStore(str(tmp_path / "stress.db"))
    query = LineageQuery.create(flow.name, "out", (), ["GEN", "A", "B", "F"])
    engine = IndexProjEngine(store, flow.flattened())
    errors: list = []
    done = threading.Event()
    start = threading.Barrier(WRITERS + READERS)

    def writer(part):
        try:
            start.wait()
            for captured in part:
                store.insert_trace(captured.trace)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reader():
        try:
            start.wait()
            while not done.is_set():
                # Any run the store admits to having must be completely
                # queryable: its lineage answer matches the answer every
                # other run of this identical-input sweep gets.
                for run_id in store.run_ids():
                    result = engine.lineage(run_id, query)
                    if not result.bindings:
                        errors.append(
                            AssertionError(f"partial run visible: {run_id}")
                        )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    parts = [runs[i::WRITERS] for i in range(WRITERS)]
    writer_threads = [
        threading.Thread(target=writer, args=(part,)) for part in parts
    ]
    reader_threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in writer_threads + reader_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    done.set()
    for thread in reader_threads:
        thread.join()

    assert errors == []
    assert sorted(store.run_ids()) == sorted(c.run_id for c in runs)

    # Differential check: the concurrently-built store answers every query
    # exactly like a store built by sequential replay of the same traces.
    replay = TraceStore(str(tmp_path / "replay.db"))
    for captured in runs:
        replay.insert_trace(captured.trace)
    replay_engine = IndexProjEngine(replay, flow.flattened())
    scope = sorted(store.run_ids())
    concurrent_answer = engine.lineage_multirun(scope, query)
    replay_answer = replay_engine.lineage_multirun(scope, query)
    assert (
        concurrent_answer.binding_keys_by_run()
        == replay_answer.binding_keys_by_run()
    )
    for run_id in scope:
        assert store.record_count(run_id) == replay.record_count(run_id)
    store.close()
    replay.close()


def test_reads_during_writes_see_only_complete_runs(tmp_path, captured_traces):
    """A reader polling run-by-run never observes a half-inserted trace."""
    flow, runs = captured_traces
    store = TraceStore(str(tmp_path / "visibility.db"))
    # Every capture used identical inputs, so all runs store the same
    # number of records; establish the expectation from a replay insert.
    probe = TraceStore(str(tmp_path / "probe.db"))
    probe.insert_trace(runs[0].trace)
    expected_records = probe.record_count(runs[0].run_id)
    probe.close()
    assert expected_records > 0

    errors: list = []
    done = threading.Event()

    def writer():
        try:
            for captured in runs[:50]:
                store.insert_trace(captured.trace)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            while not done.is_set():
                for run_id in store.run_ids():
                    count = store.record_count(run_id)
                    if count != expected_records:
                        errors.append(
                            AssertionError(
                                f"run {run_id} visible with {count} of "
                                f"{expected_records} records"
                            )
                        )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(store.run_ids()) == 50
    store.close()
