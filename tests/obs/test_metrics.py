"""Metrics unit tests: instruments, registry semantics, concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_concurrent_increments_are_lossless(self):
        c = Counter("x")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(3.5)
        assert g.value == 3.5
        g.add(-1.5)
        assert g.value == 2.0


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5

    def test_percentiles_nearest_rank(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_empty_summary_is_zeroed(self):
        s = Histogram("lat").summary()
        assert s == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_reservoir_decimation_is_deterministic_and_bounded(self):
        def fill(n):
            h = Histogram("lat", capacity=64)
            for v in range(n):
                h.observe(float(v))
            return h

        a, b = fill(10_000), fill(10_000)
        # Exact aggregates never decimate.
        assert a.count == 10_000 and a.sum == b.sum
        assert a.summary() == b.summary()  # identical across reruns
        assert len(a._samples) < 64
        # Quantiles stay representative of the full stream.
        assert 3_000 < a.percentile(50) < 7_000

    def test_concurrent_observe_keeps_exact_count(self):
        h = Histogram("lat", capacity=128)

        def work():
            for v in range(5_000):
                h.observe(float(v))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 20_000
        assert len(h._samples) <= 128


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_frees_names(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        reg.gauge("a")  # previously a counter; no clash after reset
