"""Observability facade tests, including the disabled-mode contract."""

from __future__ import annotations

import time
import timeit

from repro.obs.core import NO_OBS, NULL_SPAN, Observability


class TestEnabled:
    def test_span_and_metrics_collect(self):
        obs = Observability()
        with obs.span("outer"):
            obs.inc("events", 3)
            obs.observe("latency", 0.25)
            obs.gauge("depth", 2)
        snap = obs.metrics_snapshot()
        assert snap["counters"] == {"events": 3}
        assert snap["gauges"] == {"depth": 2}
        assert snap["histograms"]["latency"]["count"] == 1
        assert [r.name for r in obs.span_roots()] == ["outer"]

    def test_timer_is_a_real_span_when_enabled(self):
        obs = Observability()
        with obs.timer("measured", run="r1") as span:
            time.sleep(0.002)
        assert span.seconds >= 0.002
        # One source of truth: the read-back value IS the collected span.
        assert obs.span_roots()[0] is span

    def test_counter_value_and_reset(self):
        obs = Observability()
        obs.inc("n")
        assert obs.counter_value("n") == 1
        obs.reset()
        assert obs.counter_value("n") == 0
        assert obs.span_roots() == []


class TestDisabled:
    def test_no_obs_is_flagged_disabled(self):
        assert NO_OBS.enabled is False
        assert Observability().enabled is True

    def test_span_is_shared_null_singleton(self):
        assert NO_OBS.span("anything", key=1) is NULL_SPAN
        with NO_OBS.span("x") as s:
            assert s.set(a=1) is s
            assert s.seconds == 0.0

    def test_timer_still_measures(self):
        with NO_OBS.timer("t") as t:
            time.sleep(0.002)
        assert t.seconds >= 0.002

    def test_metric_hooks_are_inert(self):
        NO_OBS.inc("x", 10)
        NO_OBS.observe("y", 1.0)
        NO_OBS.gauge("z", 5)
        assert NO_OBS.counter_value("x") == 0
        assert NO_OBS.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert NO_OBS.span_roots() == []

    def test_disabled_span_overhead_is_negligible(self):
        """A disabled span must cost on the order of a method call.

        The bound is deliberately loose (CI machines are noisy): the
        disabled path must beat the *enabled* path by a wide margin, which
        fails if someone accidentally allocates spans when disabled.
        """
        obs = Observability()

        def enabled():
            with obs.span("s"):
                pass

        def disabled():
            with NO_OBS.span("s"):
                pass

        n = 20_000
        t_disabled = timeit.timeit(disabled, number=n)
        t_enabled = timeit.timeit(enabled, number=n)
        assert t_disabled < t_enabled
