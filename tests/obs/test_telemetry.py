"""Unit tests for the v2 telemetry pieces: propagation ids, traceparent,
sink, slow-query journal, time window, sampling, and the export schema.
"""

from __future__ import annotations

import contextvars
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import Observability
from repro.obs.export import SCHEMA_VERSION, SchemaError, validate_export
from repro.obs.sink import SpanSink, load_trace_log
from repro.obs.slowlog import (
    SlowQueryJournal,
    load_slowlog,
    render_slowlog_table,
    slowlog_sidecar_path,
)
from repro.obs.tracer import (
    Tracer,
    format_traceparent,
    parse_traceparent,
)
from repro.obs.window import TimeWindow, parse_window


class TestPropagationIds:
    def test_tree_shares_one_trace_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("leaf") as leaf:
                    pass
        assert len(root.trace_id) == 32
        assert root.trace_id == child.trace_id == leaf.trace_id
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert leaf.parent_id == child.span_id
        assert len({root.span_id, child.span_id, leaf.span_id}) == 3

    def test_separate_roots_get_separate_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_copied_context_continues_the_trace(self):
        """The v1 cross-thread parent-loss bug, fixed: a worker running
        in a copied context nests under the submitter's span."""
        tracer = Tracer()
        with tracer.span("request") as request_span:
            ctx = contextvars.copy_context()

            def work():
                with tracer.span("worker") as worker_span:
                    pass
                return worker_span

            with ThreadPoolExecutor(max_workers=1) as pool:
                worker_span = pool.submit(ctx.run, work).result()
        assert worker_span.trace_id == request_span.trace_id
        assert worker_span.parent_id == request_span.span_id
        assert worker_span in request_span.children
        # Exactly one rooted tree, zero orphan roots.
        assert [r.name for r in tracer.roots()] == ["request"]

    def test_plain_thread_still_roots_fresh(self):
        """Without explicit propagation, threads keep v1 semantics."""
        tracer = Tracer()
        spans = []
        with tracer.span("main"):
            t = threading.Thread(
                target=lambda: spans.append(
                    tracer.span("w").__enter__()
                )
            )
            t.start()
            t.join()
        assert spans[0].parent_id is None
        assert spans[0].trace_id != tracer.roots()[0].trace_id


class TestTraceparent:
    def test_round_trip(self):
        header = format_traceparent("ab" * 16, "cd" * 8, True)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = parse_traceparent(header)
        assert parsed == ("ab" * 16, "cd" * 8, True)

    def test_unsampled_flag(self):
        header = format_traceparent("ab" * 16, "cd" * 8, False)
        assert header.endswith("-00")
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8, False)

    @pytest.mark.parametrize("bad", [
        "",
        "00-abc-def-01",                            # wrong widths
        f"00-{'0' * 32}-{'cd' * 8}-01",             # all-zero trace id
        f"00-{'ab' * 16}-{'0' * 16}-01",            # all-zero span id
        f"ff-{'ab' * 16}-{'cd' * 8}-01",            # forbidden version
        f"00-{'zz' * 16}-{'cd' * 8}-01",            # non-hex
        f"00-{'ab' * 16}-{'cd' * 8}-01-extra",      # extra field on v00
    ])
    def test_malformed_headers_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_future_version_with_extra_fields_accepted(self):
        header = f"01-{'ab' * 16}-{'cd' * 8}-01-anything"
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8, True)

    def test_remote_span_adopts_ids(self):
        tracer = Tracer()
        with tracer.remote_span("server.request", "ab" * 16, "cd" * 8) as span:
            with tracer.span("inner") as inner:
                pass
        assert span.trace_id == "ab" * 16
        assert span.parent_id == "cd" * 8
        assert inner.trace_id == "ab" * 16

    def test_remote_unsampled_suppresses_collection(self):
        tracer = Tracer()
        sink = SpanSink()
        tracer.sink = sink
        with tracer.remote_span(
            "server.request", "ab" * 16, "cd" * 8, sampled=False
        ) as span:
            with tracer.span("inner"):
                pass
        assert span.sampled is False
        assert tracer.roots() == []
        assert len(sink) == 0
        assert span.children == []  # unsampled roots retain no children


class TestSampling:
    def test_stride_mapping(self):
        tracer = Tracer()
        assert tracer.sample_stride == 1
        tracer.set_sampling(0.1)
        assert tracer.sample_stride == 10
        tracer.set_sampling(0.0)
        assert tracer.sample_stride == 0
        tracer.set_sampling(1.0)
        assert tracer.sample_stride == 1

    def test_deterministic_every_nth_root(self):
        tracer = Tracer()
        tracer.set_sampling(0.25)
        kept = []
        for i in range(8):
            with tracer.span("r", i=i) as span:
                pass
            kept.append(span.sampled)
        assert kept == [True, False, False, False] * 2
        assert len(tracer.roots()) == 2

    def test_unsampled_spans_still_time(self):
        tracer = Tracer()
        tracer.set_sampling(0.0)
        with tracer.span("r") as span:
            pass
        assert span.sampled is False
        assert span.ended is not None and span.seconds >= 0.0


class TestSpanSink:
    def test_tracer_emits_roots_only(self):
        tracer = Tracer()
        sink = SpanSink()
        tracer.sink = sink
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(sink) == 1
        assert sink.emitted == 1
        [root] = sink.recent()
        assert root.name == "root"
        assert sink.get(root.trace_id) is root
        assert sink.get("nope") is None

    def test_ring_eviction(self):
        sink = SpanSink(capacity=2)
        tracer = Tracer()
        tracer.sink = sink
        ids = []
        for i in range(3):
            with tracer.span("r", i=i) as span:
                pass
            ids.append(span.trace_id)
        assert len(sink) == 2
        assert sink.emitted == 3
        assert sink.get(ids[0]) is None
        assert [r.attributes["i"] for r in sink.recent()] == [2, 1]

    def test_jsonl_journal(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        sink = SpanSink(path=path)
        tracer = Tracer()
        tracer.sink = sink
        with tracer.span("root", q="x"):
            with tracer.span("child"):
                pass
        records = load_trace_log(path)
        assert len(records) == 1
        assert records[0]["name"] == "root"
        assert records[0]["children"][0]["name"] == "child"
        # Byte-stable: same dict → same line.
        line = (tmp_path / "traces.jsonl").read_text().strip()
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )

    def test_load_trace_log_skips_torn_lines(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"name": "ok"}\n{"torn\n')
        assert [r["name"] for r in load_trace_log(str(path))] == ["ok"]
        assert load_trace_log(str(tmp_path / "absent.jsonl")) == []


class TestSlowQueryJournal:
    def _entry(self, wall_ms: float) -> dict:
        return {"query": "lin(...)", "strategy": "indexproj",
                "wall_ms": wall_ms, "sql_queries": 3}

    def test_threshold_gate(self):
        journal = SlowQueryJournal(threshold_ms=10.0)
        assert journal.record(self._entry(9.9)) is False
        assert journal.record(self._entry(10.0)) is True
        assert journal.record(self._entry(50.0)) is True
        assert journal.recorded == 2
        newest = journal.recent()[0]
        assert newest["wall_ms"] == 50.0
        assert newest["threshold_ms"] == 10.0

    def test_ring_bound_and_sidecar(self, tmp_path):
        db = str(tmp_path / "t.db")
        path = slowlog_sidecar_path(db)
        assert path == db + ".slowlog.jsonl"
        journal = SlowQueryJournal(threshold_ms=0.0, capacity=2, path=path)
        for i in range(3):
            journal.record(self._entry(float(i + 1)))
        assert len(journal) == 2
        # The sidecar keeps everything; the ring only the newest two.
        assert [r["wall_ms"] for r in load_slowlog(path)] == [1.0, 2.0, 3.0]
        assert [r["wall_ms"] for r in journal.recent()] == [3.0, 2.0]

    def test_render_table(self):
        journal = SlowQueryJournal(threshold_ms=0.0)
        journal.record(self._entry(12.5))
        text = render_slowlog_table(journal.recent())
        assert "wall_ms" in text and "lin(...)" in text
        assert render_slowlog_table([]) == ""


class TestTimeWindow:
    def test_report_aggregates_recent_buckets(self):
        clock = [1000.0]
        window = TimeWindow(clock=lambda: clock[0])
        window.record(200, 0.010)
        window.record(200, 0.030)
        window.record(429, 0.001)
        clock[0] += 2.0
        window.record(200, 0.020)
        report = window.report(60)
        assert report["requests"] == 4
        assert report["statuses"] == {"200": 3, "429": 1}
        assert report["rps"] == round(4 / 60, 3)
        assert report["max_ms"] == 30.0
        assert report["p50_ms"] in (10.0, 20.0)

    def test_narrow_window_excludes_old_buckets(self):
        clock = [1000.0]
        window = TimeWindow(clock=lambda: clock[0])
        window.record(200, 0.010)
        clock[0] += 10.0
        window.record(200, 0.020)
        report = window.report(2)
        assert report["requests"] == 1
        assert report["max_ms"] == 20.0

    def test_stale_bucket_reset_on_wrap(self):
        clock = [1000.0]
        window = TimeWindow(buckets=4, clock=lambda: clock[0])
        window.record(200, 0.010)
        clock[0] += 4.0  # same slot, later epoch: must reset, not merge
        window.record(200, 0.020)
        report = window.report(window.span_seconds)
        assert report["requests"] == 1
        assert report["max_ms"] == 20.0

    def test_empty_report(self):
        window = TimeWindow()
        report = window.report(60)
        assert report["requests"] == 0
        assert report["rps"] == 0.0
        assert report["p50_ms"] is None

    def test_parse_window(self):
        assert parse_window("30s") == 30
        assert parse_window("5m") == 300
        assert parse_window("1h") == 3600
        assert parse_window("45") == 45
        assert parse_window(None) == 60
        assert parse_window("") == 60
        assert parse_window("2m", max_seconds=90) == 90
        for bad in ("abc", "-3", "0", "1d", "1.5s"):
            with pytest.raises(ValueError):
                parse_window(bad)


class TestExportV2:
    def test_document_spans_carry_ids_and_validate(self):
        obs = Observability()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        from repro.obs.export import export_document

        document = export_document(obs)
        assert document["schema"] == SCHEMA_VERSION == "repro.obs/2"
        span = document["spans"][0]
        assert len(span["trace_id"]) == 32
        assert span["parent_id"] is None
        child = span["children"][0]
        assert child["trace_id"] == span["trace_id"]
        assert child["parent_id"] == span["span_id"]
        validate_export(document)

    def test_v2_rejects_missing_ids(self):
        obs = Observability()
        with obs.span("s"):
            pass
        from repro.obs.export import export_document

        document = export_document(obs)
        del document["spans"][0]["trace_id"]
        with pytest.raises(SchemaError):
            validate_export(document)
