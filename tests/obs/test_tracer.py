"""Tracer unit tests: nesting, attributes, threading, rendering."""

from __future__ import annotations

import threading

from repro.obs.tracer import Span, Tracer, render_span_tree


class TestNesting:
    def test_with_blocks_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", workflow="wf"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert outer.attributes == {"workflow": "wf"}

    def test_siblings_after_exit_are_not_nested(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots()] == ["a", "b"]
        assert all(not r.children for r in tracer.roots())

    def test_durations_are_ordered_and_finished(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.ended is not None and inner.ended is not None
        # A parent strictly contains its child.
        assert outer.seconds >= inner.seconds >= 0.0

    def test_set_attributes_mid_span(self):
        tracer = Tracer()
        with tracer.span("plan") as span:
            span.set(cache="miss", trace_queries=3)
        assert span.attributes == {"cache": "miss", "trace_queries": 3}

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("fire"):
                    pass
        assert len(tracer.find("fire")) == 3
        assert [s.name for s in tracer.roots()[0].walk()] == [
            "run", "fire", "fire", "fire",
        ]

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots() == []


class TestThreading:
    def test_worker_spans_are_independent_roots(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(i: int) -> None:
            barrier.wait()
            with tracer.span("chunk", worker=i):
                with tracer.span("item"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots()
        assert len(roots) == 4
        assert {r.name for r in roots} == {"chunk"}
        assert {r.attributes["worker"] for r in roots} == {0, 1, 2, 3}
        # Each worker's child span nested under its own root, never a peer's.
        assert all(len(r.children) == 1 for r in roots)

    def test_main_thread_stack_unaffected_by_workers(self):
        tracer = Tracer()
        with tracer.span("main-outer"):
            t = threading.Thread(target=lambda: tracer.span("w").__enter__())
            t.start()
            t.join()
            # Worker opened (and leaked) a span on ITS stack; ours is intact.
            assert tracer.current().name == "main-outer"


class TestRendering:
    def test_render_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("query", strategy="indexproj"):
            with tracer.span("plan"):
                pass
        text = render_span_tree(tracer.roots())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "strategy=indexproj" in lines[0]
        assert lines[1].startswith("  plan")
        assert "ms" in lines[0] and "ms" in lines[1]

    def test_render_empty(self):
        assert render_span_tree([]) == ""

    def test_to_dict_round_trip_shape(self):
        span = Span("s", {"k": 1})
        span.finish()
        payload = span.to_dict()
        assert payload["name"] == "s"
        assert payload["attributes"] == {"k": 1}
        assert payload["children"] == []
        assert payload["seconds"] >= 0.0
