"""Exporter tests: JSON schema, Prometheus text, sidecar persistence."""

from __future__ import annotations

import json

import pytest

from repro.obs.core import Observability
from repro.obs.export import (
    SCHEMA_VERSION,
    SchemaError,
    dump_json,
    export_document,
    load_persisted_counters,
    metrics_sidecar_path,
    persist_counters,
    render_metrics_table,
    to_prometheus,
    validate_export,
)


def _sample_obs() -> Observability:
    obs = Observability()
    with obs.span("outer", workflow="wf"):
        with obs.span("inner"):
            pass
    obs.inc("store.reads", 4)
    obs.gauge("pool.size", 2)
    obs.observe("store.read_seconds", 0.001)
    obs.observe("engine.instance_fanout", 3)
    return obs


class TestJsonExport:
    def test_document_validates(self):
        doc = export_document(_sample_obs(), meta={"command": "query"})
        validate_export(doc)  # must not raise
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["meta"] == {"command": "query"}
        assert doc["counters"] == {"store.reads": 4}
        assert doc["spans"][0]["name"] == "outer"
        assert doc["spans"][0]["children"][0]["name"] == "inner"

    def test_document_is_json_serializable(self, tmp_path):
        path = str(tmp_path / "obs.json")
        returned = dump_json(_sample_obs(), path)
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded == json.loads(json.dumps(returned))
        validate_export(loaded)

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("schema"), "schema"),
            (lambda d: d.update(schema="repro.obs/999"), "schema"),
            (lambda d: d.update(counters=[]), "counters"),
            (lambda d: d["counters"].update(bad=-1), "non-negative"),
            (lambda d: d["counters"].update(bad=1.5), "non-negative"),
            (lambda d: d["histograms"]["store.read_seconds"].pop("p95"), "p95"),
            (lambda d: d.update(spans={}), "spans"),
            (lambda d: d["spans"][0].pop("children"), "children"),
        ],
    )
    def test_invalid_documents_rejected(self, mutate, message):
        doc = export_document(_sample_obs())
        mutate(doc)
        with pytest.raises(SchemaError, match=message):
            validate_export(doc)


class TestPrometheus:
    def test_exposition_format(self):
        text = to_prometheus(_sample_obs())
        assert "# TYPE repro_store_reads_total counter" in text
        assert "repro_store_reads_total 4" in text
        assert "# TYPE repro_pool_size gauge" in text
        assert 'repro_store_read_seconds{quantile="0.50"}' in text
        assert "repro_store_read_seconds_count 1" in text
        assert text.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(Observability()) == ""


class TestMetricsTable:
    def test_sections_and_units(self):
        table = render_metrics_table(_sample_obs().metrics_snapshot())
        assert "counters:" in table
        assert "store.reads" in table
        # Duration histograms display in ms; unitless ones stay raw.
        assert "store.read_ms" in table
        assert "mean=1.000" in table
        assert "engine.instance_fanout" in table
        assert "mean=3.000" in table

    def test_empty_snapshot(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert render_metrics_table(empty) == ""


class TestSidecarPersistence:
    def test_counters_accumulate_across_invocations(self, tmp_path):
        db = str(tmp_path / "t.db")
        persist_counters(_sample_obs(), db)
        persist_counters(_sample_obs(), db)
        doc = load_persisted_counters(db)
        assert doc["counters"] == {"store.reads": 8}
        assert doc["invocations"] == 2
        assert doc["schema"] == SCHEMA_VERSION

    def test_missing_or_corrupt_sidecar_yields_skeleton(self, tmp_path):
        db = str(tmp_path / "t.db")
        assert load_persisted_counters(db)["counters"] == {}
        with open(metrics_sidecar_path(db), "w", encoding="utf-8") as handle:
            handle.write("not json{")
        assert load_persisted_counters(db) == {
            "schema": SCHEMA_VERSION, "invocations": 0, "counters": {},
        }
