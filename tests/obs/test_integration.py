"""End-to-end observability: service, strategies, store, fault injection.

These tests pin the PR's core contracts: span timings and result timings
are the *same measurement*; the plan cache's hit/miss behaviour (paper
Section 3.4) is visible in counters; store retries and injected faults
surface in both ``StoreStats`` and the metrics registry; and nothing is
recorded when observability is disabled (the default).
"""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.provenance.faults import FaultInjector, InjectedCrash
from repro.provenance.store import RetryPolicy, StoreBusyError, TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.service import ProvenanceService
from tests.conftest import build_diamond_workflow


@pytest.fixture
def obs() -> Observability:
    return Observability()


def _query() -> LineageQuery:
    return LineageQuery.create("wf", "out", [1, 1], focus=["GEN", "A", "B"])


class TestServiceWiring:
    def test_run_and_query_populate_all_layers(self, diamond_flow, obs):
        with ProvenanceService(obs=obs) as service:
            service.register_workflow(diamond_flow)
            run_id = service.run("wf", {"size": 3})
            # compiled=False: this test pins the *interpreted* strategy
            # spans; the compiled path's counters have their own tests.
            service.lineage(_query(), runs=[run_id], compiled=False)
        snap = service.metrics_snapshot()
        counters = snap["counters"]
        assert counters["engine.runs"] == 1
        assert counters["engine.xform_events"] > 0
        assert counters["store.writes"] == 1
        assert counters["store.reads"] > 0
        assert counters["store.rows_fetched"] > 0
        assert counters["indexproj.plan_cache_misses"] == 1
        names = {root.name for root in service.obs.span_roots()}
        assert "engine.run" in names
        # The query now roots at the service facade; the strategy's
        # plan/execute spans nest underneath it.
        assert "service.lineage" in names
        lineage_roots = [
            r for r in service.obs.span_roots()
            if r.name == "service.lineage"
        ]
        assert any(r.find("indexproj.plan") for r in lineage_roots)

    def test_default_service_records_nothing(self, diamond_flow):
        with ProvenanceService() as service:
            service.register_workflow(diamond_flow)
            run_id = service.run("wf", {"size": 3})
            result = service.lineage(_query(), runs=[run_id])
        assert service.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert service.obs.span_roots() == []
        # Result timings survive without observability.
        assert result.per_run[run_id].total_seconds > 0.0

    def test_plan_cache_hit_on_second_query(self, diamond_flow, obs):
        # cache=False: the result cache would serve the repeat without
        # re-planning; this test pins the *plan* cache's instrumentation.
        with ProvenanceService(obs=obs, cache=False) as service:
            service.register_workflow(diamond_flow)
            run_id = service.run("wf", {"size": 3})
            first = service.lineage(_query(), runs=[run_id], compiled=False)
            second = service.lineage(_query(), runs=[run_id], compiled=False)
        counters = service.metrics_snapshot()["counters"]
        assert counters["indexproj.plan_cache_misses"] == 1
        assert counters["indexproj.plan_cache_hits"] == 1
        assert (
            first.per_run[run_id].bindings == second.per_run[run_id].bindings
        )
        plans = [
            s for r in service.obs.span_roots()
            for s in r.find("indexproj.plan")
        ]
        assert [p.attributes["cache"] for p in plans] == ["miss", "hit"]


class TestTimingAgreement:
    def test_s1_s2_spans_are_the_result_timings(self, diamond_store, obs):
        engine = IndexProjEngine(
            diamond_store, build_diamond_workflow(), obs=obs
        )
        run_id = diamond_store.run_ids()[0]
        result = engine.lineage(run_id, _query())
        plan_span = obs.tracer.find("indexproj.plan")[0]
        exec_span = obs.tracer.find("indexproj.execute")[0]
        # One source of truth: result fields ARE the span measurements.
        assert result.traversal_seconds == plan_span.seconds
        assert result.lookup_seconds == exec_span.seconds

    def test_naive_span_is_the_result_timing(self, diamond_store, obs):
        engine = NaiveEngine(diamond_store, obs=obs)
        run_id = diamond_store.run_ids()[0]
        result = engine.lineage(run_id, _query())
        span = obs.tracer.find("naive.traverse")[0]
        assert result.lookup_seconds == span.seconds
        counters = obs.metrics_snapshot()["counters"]
        assert counters["naive.traversals"] == 1
        assert counters["naive.node_visits"] > 0

    def test_trace_lookup_latency_histogram(self, diamond_store, obs):
        engine = IndexProjEngine(
            diamond_store, build_diamond_workflow(), obs=obs
        )
        run_id = diamond_store.run_ids()[0]
        engine.lineage(run_id, _query())
        snap = obs.metrics_snapshot()
        lookups = snap["counters"]["indexproj.trace_lookups"]
        assert lookups > 0
        assert snap["histograms"]["indexproj.trace_lookup_seconds"][
            "count"
        ] == lookups

    def test_parallel_fanout_spans(self, diamond_flow, obs):
        with ProvenanceService(obs=obs) as service:
            service.register_workflow(diamond_flow)
            runs = [service.run("wf", {"size": 3}) for _ in range(4)]
            service.lineage(_query(), runs=runs, workers=2)
        counters = service.metrics_snapshot()["counters"]
        assert counters["indexproj.multirun_runs"] == 4
        assert counters["indexproj.parallel_chunks"] == 2
        # Context propagation keeps worker chunks inside the one query
        # trace: they nest under the fan-out span, not as orphan roots.
        roots = service.obs.span_roots()
        assert not any(r.name == "indexproj.chunk" for r in roots)
        fanouts = [
            span
            for root in roots
            for span in root.walk()
            if span.name == "indexproj.parallel_fanout"
        ]
        assert len(fanouts) == 1
        chunks = [
            c for c in fanouts[0].children if c.name == "indexproj.chunk"
        ]
        assert len(chunks) == 2
        assert all(c.find("indexproj.execute") for c in chunks)
        assert len({c.trace_id for c in chunks}) == 1


class TestStoreAndFaults:
    def test_write_busy_retries_reach_metrics(
        self, tmp_path, diamond_run, obs
    ):
        faults = FaultInjector()
        store = TraceStore(
            str(tmp_path / "t.db"),
            retry=RetryPolicy(max_attempts=5, base_delay=0.0),
            faults=faults, obs=obs,
        )
        try:
            faults.inject_busy(2)
            store.insert_trace(diamond_run.trace)
        finally:
            store.close()
        counters = obs.metrics_snapshot()["counters"]
        assert counters["faults.busy_injected"] == 2
        assert counters["store.busy_retries"] == 2
        assert counters["store.backoff_sleeps"] == 2
        assert counters["store.rollbacks"] == 2
        assert counters["store.writes"] == 1
        assert faults.busy_raised == 2

    def test_read_busy_retries_reach_stats_and_metrics(
        self, tmp_path, diamond_run, obs
    ):
        faults = FaultInjector()
        store = TraceStore(
            str(tmp_path / "t.db"),
            retry=RetryPolicy(max_attempts=5, base_delay=0.0),
            faults=faults, obs=obs,
        )
        try:
            store.insert_trace(diamond_run.trace)
            faults.inject_read_busy(2)
            engine = NaiveEngine(store, obs=obs)
            result = engine.lineage(diamond_run.run_id, _query())
            assert result.bindings
        finally:
            store.close()
        # Satellite 1: the per-query StoreStats carries both counters...
        assert result.stats.busy_retries == 2
        assert result.stats.fault_injections == 2
        # ...and the registry mirrors them store-wide.
        counters = obs.metrics_snapshot()["counters"]
        assert counters["faults.read_busy_injected"] == 2
        assert counters["store.busy_retries"] == 2

    def test_read_busy_exhaustion_raises_and_counts(
        self, tmp_path, diamond_run, obs
    ):
        faults = FaultInjector()
        store = TraceStore(
            str(tmp_path / "t.db"),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            faults=faults, obs=obs,
        )
        try:
            store.insert_trace(diamond_run.trace)
            faults.inject_read_busy(10)
            with pytest.raises(StoreBusyError):
                store.run_ids()
        finally:
            faults.reset()
            store.close()
        assert obs.metrics_snapshot()["counters"]["store.busy_failures"] == 1

    def test_injected_crash_rollback_counted(self, tmp_path, diamond_run, obs):
        faults = FaultInjector()
        store = TraceStore(str(tmp_path / "t.db"), faults=faults, obs=obs)
        try:
            faults.inject_crash_after(1)
            with pytest.raises(InjectedCrash):
                store.insert_trace(diamond_run.trace)
        finally:
            store.close()
        counters = obs.metrics_snapshot()["counters"]
        assert counters["faults.crash_injected"] == 1
        assert counters["store.rollbacks"] == 1
        assert counters.get("store.writes", 0) == 0
