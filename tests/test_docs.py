"""Documentation correctness tests.

Two guarantees:

* every Python code fence in ``docs/TUTORIAL.md`` executes, in order, in
  a single shared namespace — the tutorial can never drift from the API;
* the doctests embedded in the library's docstrings pass.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
TUTORIAL = REPO_ROOT / "docs" / "TUTORIAL.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def tutorial_blocks():
    text = TUTORIAL.read_text(encoding="utf-8")
    return _FENCE.findall(text)


class TestTutorial:
    def test_tutorial_exists_and_has_blocks(self):
        blocks = tutorial_blocks()
        assert len(blocks) >= 8

    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # snippets may create store files
        namespace: dict = {}
        for number, block in enumerate(tutorial_blocks(), start=1):
            try:
                exec(compile(block, f"<tutorial block {number}>", "exec"),
                     namespace)
            except Exception as exc:  # pragma: no cover - fails the test
                pytest.fail(
                    f"tutorial block {number} failed: {exc}\n---\n{block}"
                )

    def test_readme_quickstart_executes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # snippets may create store files
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        blocks = _FENCE.findall(readme)
        assert blocks, "README has no python quickstart"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "<readme>", "exec"), namespace)


DOCTEST_MODULES = [
    "repro.values.index",
    "repro.values.nested",
    "repro.values.types",
    "repro.values.pattern",
    "repro.workflow.builder",
    "repro.workflow.patterns",
    "repro.strategy",
    "repro.query.base",
    "repro.query.parser",
    "repro.bench.reporting",
]


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module_name}: {results.failed} failures"
        assert results.attempted > 0, f"{module_name} has no doctests"
