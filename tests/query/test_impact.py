"""Tests for forward (impact) queries (repro.query.impact)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.graph import reference_impact
from repro.provenance.store import TraceStore
from repro.query.impact import (
    ImpactQuery,
    IndexProjImpactEngine,
    NaiveImpactEngine,
    PatternTraceQuery,
    build_impact_plan,
)
from repro.values.index import Index
from repro.values.pattern import IndexPattern
from repro.workflow.depths import propagate_depths

from tests.conftest import build_diamond_workflow, build_fig3_workflow


@pytest.fixture(scope="module")
def diamond():
    flow = build_diamond_workflow()
    captured = capture_run(flow, {"size": 3})
    store = TraceStore()
    store.insert_trace(captured.trace)
    yield flow, captured, store
    store.close()


class TestImpactPlanning:
    def test_fixed_fragment_becomes_slot_pattern(self, diamond):
        flow, _, _ = diamond
        analysis = propagate_depths(flow)
        plan = build_impact_plan(
            analysis, ImpactQuery.create("B", "x", [2], ["F"])
        )
        # B feeds F's second input slot: pattern [*, 2].
        assert set(plan.trace_queries) == {
            PatternTraceQuery("F", "y", IndexPattern(None, 2)),
        }

    def test_first_slot_pattern(self, diamond):
        flow, _, _ = diamond
        analysis = propagate_depths(flow)
        plan = build_impact_plan(
            analysis, ImpactQuery.create("A", "x", [1], ["F"])
        )
        assert set(plan.trace_queries) == {
            PatternTraceQuery("F", "y", IndexPattern(1, None)),
        }

    def test_plan_from_workflow_input(self, diamond):
        flow, _, _ = diamond
        analysis = propagate_depths(flow)
        plan = build_impact_plan(
            analysis, ImpactQuery.create("wf", "size", [], ["A", "B", "F"])
        )
        processors = {tq.processor for tq in plan.trace_queries}
        assert processors == {"A", "B", "F"}

    def test_focus_restricts_plan(self, diamond):
        flow, _, _ = diamond
        analysis = propagate_depths(flow)
        plan = build_impact_plan(
            analysis, ImpactQuery.create("GEN", "list", [0], ["A"])
        )
        assert {tq.processor for tq in plan.trace_queries} == {"A"}


class TestImpactAnswers:
    def test_element_impact_through_cross_product(self, diamond):
        flow, captured, store = diamond
        query = ImpactQuery.create("A", "x", [1], ["F"])
        result = NaiveImpactEngine(store).impact(captured.run_id, query)
        assert [b.key() for b in result.bindings] == [
            ("F", "y", "1.0"), ("F", "y", "1.1"), ("F", "y", "1.2"),
        ]

    def test_engines_and_reference_agree(self, diamond):
        flow, captured, store = diamond
        cases = [
            ("A", "x", [1], ["F"]),
            ("B", "x", [2], ["F"]),
            ("GEN", "list", [0], ["A", "B", "F"]),
            ("wf", "size", [], ["F"]),
            ("GEN", "list", [], ["A"]),
        ]
        for node, port, index, focus in cases:
            query = ImpactQuery.create(node, port, index, focus)
            naive = NaiveImpactEngine(store).impact(captured.run_id, query)
            indexproj = IndexProjImpactEngine(store, flow).impact(
                captured.run_id, query
            )
            reference = reference_impact(
                captured.trace, node, port, Index.of(index), focus
            )
            reference_keys = frozenset(b.key() for b in reference)
            assert naive.binding_keys() == reference_keys, str(query)
            assert indexproj.binding_keys() == reference_keys, str(query)

    def test_impact_values_returned(self, diamond):
        flow, captured, store = diamond
        query = ImpactQuery.create("A", "x", [0], ["F"])
        result = IndexProjImpactEngine(store, flow).impact(
            captured.run_id, query
        )
        assert {b.value for b in result.bindings} == {
            "item-0-a+item-0-b", "item-0-a+item-1-b", "item-0-a+item-2-b",
        }

    def test_indexproj_lookup_count(self, diamond):
        flow, captured, store = diamond
        query = ImpactQuery.create("A", "x", [0], ["F"])
        result = IndexProjImpactEngine(store, flow).impact(
            captured.run_id, query
        )
        assert result.stats.queries == 1  # one output port in focus

    def test_coarse_boundary_widens_impact(self):
        """Through a whole-list consumer, impact covers every downstream
        element (the forward mirror of coarse lineage)."""
        flow = build_fig3_workflow()
        captured = capture_run(
            flow, {"v": ["v0", "v1"], "w": "w", "c": ["c0"]}
        )
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            # R consumed w whole; every P output depends on it.
            query = ImpactQuery.create("fig3", "w", [], ["P"])
            naive = NaiveImpactEngine(store).impact(captured.run_id, query)
            indexproj = IndexProjImpactEngine(store, flow).impact(
                captured.run_id, query
            )
            assert len(naive.bindings) == 6  # |v| * width(R) = 2 * 3
            assert naive.binding_keys() == indexproj.binding_keys()

    def test_fine_element_stays_narrow(self):
        flow = build_fig3_workflow()
        captured = capture_run(
            flow, {"v": ["v0", "v1", "v2"], "w": "w", "c": ["c0"]}
        )
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            query = ImpactQuery.create("fig3", "v", [1], ["P"])
            result = IndexProjImpactEngine(store, flow).impact(
                captured.run_id, query
            )
            # Only the q = [1, *] row of P's outputs.
            assert all(b.index[0] == 1 for b in result.bindings)
            assert len(result.bindings) == 3


class TestImpactMultirun:
    def test_plan_shared_across_runs(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            run_ids = []
            for _ in range(3):
                captured = capture_run(flow, {"size": 2})
                store.insert_trace(captured.trace)
                run_ids.append(captured.run_id)
            engine = IndexProjImpactEngine(store, flow)
            multi = engine.impact_multirun(
                run_ids, ImpactQuery.create("A", "x", [1], ["F"])
            )
            assert sorted(multi.run_ids) == sorted(run_ids)
            for result in multi.per_run.values():
                assert len(result.bindings) == 2
                assert result.stats.queries == 1
