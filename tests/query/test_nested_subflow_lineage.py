"""Lineage queries through nested (flattened) sub-workflows."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.workflow.builder import DataflowBuilder


def build_nested():
    """Host workflow embedding a two-step sub-workflow, iterated per
    element of the host's input list."""
    sub = (
        DataflowBuilder("sub")
        .input("a", "string")
        .output("b", "string")
        .processor("clean", inputs=[("x", "string")],
                   outputs=[("y", "string")], operation="tag",
                   config={"suffix": "-clean"})
        .processor("norm", inputs=[("x", "string")],
                   outputs=[("y", "string")], operation="tag",
                   config={"suffix": "-norm"})
        .arc("sub:a", "clean:x")
        .arc("clean:y", "norm:x")
        .arc("norm:y", "sub:b")
        .build()
    )
    return (
        DataflowBuilder("host")
        .input("items", "list(string)")
        .output("out", "list(string)")
        .processor("stage", inputs=[("a", "string")],
                   outputs=[("b", "string")], subflow=sub)
        .processor("final", inputs=[("x", "string")],
                   outputs=[("y", "string")], operation="tag",
                   config={"suffix": "-done"})
        .arc("host:items", "stage:a")
        .arc("stage:b", "final:x")
        .arc("final:y", "host:out")
        .build()
    )


@pytest.fixture(scope="module")
def nested():
    flow = build_nested()
    captured = capture_run(flow, {"items": ["p", "q", "r"]})
    store = TraceStore()
    store.insert_trace(captured.trace)
    yield flow, captured, store
    store.close()


class TestNestedLineage:
    def test_execution_iterates_inside_subflow(self, nested):
        _, captured, _ = nested
        assert captured.outputs["out"] == [
            "p-clean-norm-done", "q-clean-norm-done", "r-clean-norm-done",
        ]

    def test_trace_uses_qualified_names(self, nested):
        _, captured, _ = nested
        assert "stage/clean" in captured.trace.processor_names
        assert "stage/norm" in captured.trace.processor_names

    def test_focused_query_on_inner_processor(self, nested):
        flow, captured, store = nested
        query = LineageQuery.create("host", "out", [2], ["stage/clean"])
        naive = NaiveEngine(store).lineage(captured.run_id, query)
        indexproj = IndexProjEngine(store, flow).lineage(
            captured.run_id, query
        )
        assert naive.binding_keys() == indexproj.binding_keys()
        assert [b.key() for b in naive.bindings] == [("stage/clean", "x", "2")]
        assert naive.bindings[0].value == "r"

    def test_engine_accepts_unflattened_flow(self, nested):
        """IndexProjEngine flattens internally; callers can pass the
        nested definition directly."""
        flow, captured, store = nested
        engine = IndexProjEngine(store, flow)  # not flow.flattened()
        result = engine.lineage(
            captured.run_id,
            LineageQuery.create("final", "y", [0], ["stage/norm"]),
        )
        assert [b.key() for b in result.bindings] == [("stage/norm", "x", "0")]

    def test_unfocused_query_spans_boundary(self, nested):
        flow, captured, store = nested
        flat = flow.flattened()
        query = LineageQuery.create(
            "host", "out", [1], list(flat.processor_names)
        )
        naive = NaiveEngine(store).lineage(captured.run_id, query)
        indexproj = IndexProjEngine(store, flow).lineage(
            captured.run_id, query
        )
        assert naive.binding_keys() == indexproj.binding_keys()
        nodes = {b.node for b in naive.bindings}
        assert nodes == {"stage/clean", "stage/norm", "final"}


class TestMixedWorkflowStore:
    def test_runs_of_different_workflows_are_isolated(self):
        from tests.conftest import build_diamond_workflow

        nested_flow = build_nested()
        diamond = build_diamond_workflow()
        with TraceStore() as store:
            nested_run = capture_run(nested_flow, {"items": ["p"]})
            diamond_run = capture_run(diamond, {"size": 2})
            store.insert_trace(nested_run.trace)
            store.insert_trace(diamond_run.trace)
            assert store.run_ids(workflow="host") == [nested_run.run_id]
            assert store.run_ids(workflow="wf") == [diamond_run.run_id]
            # A query against the wrong run id returns nothing.
            result = NaiveEngine(store).lineage(
                diamond_run.run_id,
                LineageQuery.create("host", "out", [0], ["stage/clean"]),
            )
            assert result.bindings == []
