"""Tests for the index projection rule (repro.query.projection).

Includes the erratum demonstration: the paper's literal Def. 4 (fragments
starting at the port *position*) contradicts Prop. 1 on the paper's own
Fig. 3 example, while the corrected rule (fragments at cumulative-mismatch
offsets) matches the executed traces exactly.
"""

from repro.engine.executor import run_workflow
from repro.provenance.trace import TraceBuilder
from repro.query.projection import (
    project_output_index,
    uncorrected_project_output_index,
)
from repro.values.index import Index
from repro.workflow.depths import propagate_depths

from tests.conftest import build_diamond_workflow, build_fig3_workflow


class TestCrossProjection:
    def setup_method(self):
        self.analysis = propagate_depths(build_fig3_workflow())

    def test_full_index_splits_by_mismatch(self):
        fragments = project_output_index(self.analysis, "P", Index(3, 7))
        assert fragments == [
            ("X1", Index(3)),
            ("X2", Index()),
            ("X3", Index(7)),
        ]

    def test_partial_index_clips_missing_positions(self):
        fragments = project_output_index(self.analysis, "P", Index(3))
        assert fragments == [
            ("X1", Index(3)),
            ("X2", Index()),
            ("X3", Index()),  # unconstrained -> whole value
        ]

    def test_empty_index_gives_all_empty_fragments(self):
        fragments = project_output_index(self.analysis, "P", Index())
        assert all(fragment == Index() for _, fragment in fragments)

    def test_excess_positions_dropped(self):
        # Positions beyond the iteration level address structure inside one
        # instance's output: black box, so they project away.
        fragments = project_output_index(self.analysis, "P", Index(3, 7, 9, 9))
        assert fragments == [
            ("X1", Index(3)),
            ("X2", Index()),
            ("X3", Index(7)),
        ]

    def test_zero_level_processor(self):
        analysis = propagate_depths(build_diamond_workflow())
        fragments = project_output_index(analysis, "GEN", Index(5))
        assert fragments == [("size", Index())]


class TestAgainstExecutedTraces:
    """The projection of every executed instance index must reproduce the
    recorded input fragments — Prop. 1 as an executable check."""

    def assert_projection_matches_trace(self, flow, inputs):
        builder = TraceBuilder("t", flow.name)
        run_workflow(flow, inputs, listener=builder)
        analysis = propagate_depths(flow)
        for event in builder.trace.xforms:
            q = event.outputs[0].index
            projected = dict(project_output_index(analysis, event.processor, q))
            recorded = {b.port: b.index for b in event.inputs}
            assert projected == recorded, (event.processor, q)

    def test_fig3(self):
        self.assert_projection_matches_trace(
            build_fig3_workflow(),
            {"v": ["v0", "v1"], "w": "w", "c": ["c0", "c1"]},
        )

    def test_diamond(self):
        self.assert_projection_matches_trace(build_diamond_workflow(), {"size": 3})


class TestErratum:
    def test_uncorrected_rule_violates_prop1_on_fig3(self):
        """Def. 4 as printed: X3 sits at port position 2, so its fragment
        would start at position 2 of a length-2 index — beyond the end —
        yielding the empty fragment where the trace records [l]."""
        analysis = propagate_depths(build_fig3_workflow())
        corrected = dict(project_output_index(analysis, "P", Index(3, 7)))
        literal = dict(uncorrected_project_output_index(analysis, "P", Index(3, 7)))
        assert corrected["X3"] == Index(7)
        assert literal["X3"] != corrected["X3"]

    def test_rules_agree_when_offsets_equal_positions(self):
        """With every input iterated exactly one level, cumulative offsets
        coincide with port positions and the two readings agree."""
        analysis = propagate_depths(build_diamond_workflow())
        q = Index(2, 5)
        assert project_output_index(
            analysis, "F", q
        ) == uncorrected_project_output_index(analysis, "F", q)


class TestDotProjection:
    def test_iterated_ports_share_fragment(self):
        from repro.workflow.builder import DataflowBuilder

        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .input("b", "list(string)")
            .processor(
                "Z",
                inputs=[("x1", "string"), ("x2", "string")],
                outputs=[("y", "string")],
                operation="concat_pair",
                iteration="dot",
                config={"left": "x1", "right": "x2"},
            )
            .arcs(("wf:a", "Z:x1"), ("wf:b", "Z:x2"))
            .build()
        )
        analysis = propagate_depths(flow)
        fragments = project_output_index(analysis, "Z", Index(4))
        assert fragments == [("x1", Index(4)), ("x2", Index(4))]
