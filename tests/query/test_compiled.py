"""Compiled-plan registry: reuse, invalidation, statement-cache coherence.

Pins the tentpole's safety story: a compiled program never survives a
store generation bump — index maintenance (``drop_indexes`` /
``create_indexes``), ``vacuum`` and ``delete_run`` all evict the
registry and force a recompile, and a global bump additionally flushes
the per-connection prepared-statement accounting epoch.  Registry
mechanics (LRU eviction, hit/miss counters, capacity validation) and
the service/explain surface ride along.
"""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.provenance.maintenance import vacuum
from repro.query.base import LineageQuery
from repro.query.compiled import (
    CompiledPlan,
    PlanKey,
    PlanRegistry,
    compile_plan,
)
from repro.query.indexproj import IndexProjEngine
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow


def _query(index=(1, 1), focus=("GEN", "A", "B")):
    return LineageQuery.create("wf", "out", list(index), focus=list(focus))


@pytest.fixture
def service():
    svc = ProvenanceService(obs=Observability())
    svc.register_workflow(build_diamond_workflow())
    for _ in range(3):
        svc.run("wf", {"size": 2})
    yield svc
    svc.close()


@pytest.fixture
def engine(service):
    return IndexProjEngine(service.store, build_diamond_workflow())


def _scope(service):
    return service.runs_of("wf")


class TestRegistryReuse:
    def test_second_call_is_a_plan_hit(self, service, engine):
        scope = _scope(service)
        first = engine.lineage_multirun_compiled(scope, _query())
        second = engine.lineage_multirun_compiled(scope, _query())
        stats = engine.plan_registry.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)
        assert second.binding_keys_by_run() == first.binding_keys_by_run()

    def test_distinct_query_shapes_compile_separately(self, service, engine):
        scope = _scope(service)
        engine.lineage_multirun_compiled(scope, _query())
        engine.lineage_multirun_compiled(scope, _query(focus=("GEN", "A")))
        stats = engine.plan_registry.stats()
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_plan_is_scope_independent(self, service, engine):
        scope = _scope(service)
        engine.lineage_multirun_compiled(scope[:1], _query())
        engine.lineage_multirun_compiled(scope, _query())
        assert engine.plan_registry.stats()["hits"] == 1

    def test_lru_eviction_at_capacity(self, service):
        registry = PlanRegistry(service.store, max_entries=2)
        flow = build_diamond_workflow()
        engine = IndexProjEngine(
            service.store, flow, plan_registry=registry
        )
        scope = _scope(service)
        queries = [
            _query(focus=("GEN",)),
            _query(focus=("GEN", "A")),
            _query(focus=("GEN", "A", "B")),
        ]
        for q in queries:
            engine.lineage_multirun_compiled(scope, q)
        stats = registry.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # The evicted (oldest) shape recompiles; the newest is still hot.
        engine.lineage_multirun_compiled(scope, queries[0])
        assert registry.stats()["misses"] == 4
        engine.lineage_multirun_compiled(scope, queries[2])
        assert registry.stats()["hits"] == 1

    def test_capacity_must_be_positive(self, service):
        with pytest.raises(ValueError):
            PlanRegistry(service.store, max_entries=0)

    def test_clear_reports_dropped(self, service, engine):
        engine.lineage_multirun_compiled(_scope(service), _query())
        assert len(engine.plan_registry) == 1
        assert engine.plan_registry.clear() == 1
        assert len(engine.plan_registry) == 0


class TestGenerationInvalidation:
    def _warm(self, service, engine):
        scope = _scope(service)
        reference = engine.lineage_multirun_compiled(scope, _query())
        assert engine.plan_registry.stats()["misses"] == 1
        return scope, reference

    def _assert_recompiled(self, service, engine, scope, reference):
        assert len(engine.plan_registry) == 0
        assert engine.plan_registry.stats()["invalidations"] >= 1
        again = engine.lineage_multirun_compiled(scope, _query())
        stats = engine.plan_registry.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0
        assert again.binding_keys_by_run() == {
            run: keys
            for run, keys in reference.binding_keys_by_run().items()
            if run in again.per_run
        }

    def test_drop_indexes_evicts_and_recompiles(self, service, engine):
        scope, reference = self._warm(service, engine)
        service.store.drop_indexes()
        self._assert_recompiled(service, engine, scope, reference)

    def test_create_indexes_evicts_and_recompiles(self, service, engine):
        scope, reference = self._warm(service, engine)
        service.store.create_indexes()
        self._assert_recompiled(service, engine, scope, reference)

    def test_vacuum_evicts_and_recompiles(self, service, engine):
        scope, reference = self._warm(service, engine)
        vacuum(service.store)
        self._assert_recompiled(service, engine, scope, reference)

    def test_delete_run_evicts_and_recompiles(self, service, engine):
        scope, reference = self._warm(service, engine)
        service.store.delete_run(scope[-1])
        self._assert_recompiled(
            service, engine, scope[:-1], reference
        )

    def test_stale_plan_never_served_without_listener(self, service):
        """Belt and braces: even if eager eviction were skipped, the
        generation check on fetch rejects a stale program."""
        registry = PlanRegistry(service.store)
        flow = build_diamond_workflow()
        engine = IndexProjEngine(service.store, flow, plan_registry=registry)
        engine.lineage_multirun_compiled(_scope(service), _query())
        key = PlanKey.of(engine._workflow_fingerprint(), _query())
        stale = registry._plans[key]
        doctored = CompiledPlan(
            key=stale.key,
            lookups=stale.lookups,
            visited_ports=stale.visited_ports,
            generations=(stale.generations[0] - 1, stale.generations[1]),
            compile_seconds=stale.compile_seconds,
        )
        registry._plans[key] = doctored
        engine.lineage_multirun_compiled(_scope(service), _query())
        assert registry.stats()["misses"] == 2


class TestStatementCacheCoherence:
    def test_warm_execution_hits_statement_cache(self, service, engine):
        scope = _scope(service)
        engine.lineage_multirun_compiled(scope, _query())
        engine.lineage_multirun_compiled(scope, _query())
        stats = service.store.statement_cache_stats()
        assert stats["hits"] >= 1

    def test_global_bump_flushes_statement_epoch(self, service, engine):
        scope = _scope(service)
        engine.lineage_multirun_compiled(scope, _query())
        before = service.store.statement_cache_stats()
        service.store.drop_indexes()
        after = service.store.statement_cache_stats()
        assert after["epoch"] > before["epoch"]
        # The first post-bump execution re-primes: it must record a
        # miss, not a hit against the flushed accounting.
        engine.lineage_multirun_compiled(scope, _query())
        reprimed = service.store.statement_cache_stats()
        assert reprimed["misses"] > before["misses"]


class TestServiceSurface:
    def test_compiled_default_and_opt_out_agree(self, service):
        reference = service.lineage(_query(), compiled=False, cache=False)
        compiled = service.lineage(_query(), cache=False)
        assert (
            compiled.binding_keys_by_run()
            == reference.binding_keys_by_run()
        )

    def test_explicit_compiled_wins_over_workers(self, service):
        result = service.lineage(
            _query(), compiled=True, workers=4, cache=False
        )
        # The compiled path shares one stats object across runs; the
        # parallel path would have per-run stats objects.
        assert len({id(r.stats) for r in result.per_run.values()}) == 1

    def test_obs_counters(self):
        # cache=False end to end: with the trace cache on, the warm
        # repeat never reaches the store, so no statement is re-bound.
        svc = ProvenanceService(obs=Observability(), cache=False)
        svc.register_workflow(build_diamond_workflow())
        for _ in range(3):
            svc.run("wf", {"size": 2})
        svc.lineage(_query())
        svc.lineage(_query())
        counters = svc.metrics_snapshot()["counters"]
        assert counters["compiled.plan_misses"] == 1
        assert counters["compiled.plan_hits"] == 1
        assert counters["store.stmt_cache_hits"] >= 1
        svc.close()

    def test_cache_stats_exposes_registry(self, service):
        service.lineage(_query(), cache=False)
        plans = service.cache_stats()["plans"]
        assert plans["entries"] == 1
        assert plans["capacity"] >= 1

    def test_invalidate_caches_clears_registry(self, service):
        service.lineage(_query(), cache=False)
        dropped = service.invalidate_caches()
        assert dropped["plans"] >= 1
        assert service.cache_stats()["plans"]["entries"] == 0

    def test_explain_plan_reports_compiled_state(self, service):
        cold = service.explain_plan(_query())
        assert cold.execution == "compiled"
        assert cold.plan_state == "cold"
        service.lineage(_query(), cache=False)
        warm = service.explain_plan(_query())
        assert warm.plan_state == "warm"
        assert "execution: compiled (plan warm" in warm.summary()


class TestCompileFunction:
    def test_compile_plan_matches_build_plan(self, service, engine):
        from repro.workflow.depths import propagate_depths

        analysis = propagate_depths(build_diamond_workflow().flattened())
        plan = compile_plan(analysis, _query(), "fp")
        assert plan.trace_queries == len(plan.lookups) > 0
        assert plan.key.fingerprint == "fp"
        for lookup in plan.lookups:
            node, port, encoded, prefixes, like, low, high, cost = lookup
            assert isinstance(node, str) and isinstance(port, str)
            assert cost == 5 * len(prefixes) + 6
            assert like.endswith("%")
            assert low < high

    def test_pairs_cross_product(self, service):
        from repro.workflow.depths import propagate_depths

        analysis = propagate_depths(build_diamond_workflow().flattened())
        plan = compile_plan(analysis, _query(), "fp")
        pairs = plan.pairs(["r1", "r2"])
        assert len(pairs) == 2 * len(plan.lookups)
        assert {run for run, _ in pairs} == {"r1", "r2"}
