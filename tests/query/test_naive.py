"""Tests for the naive strategy (repro.query.naive)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.naive import NaiveEngine

from tests.conftest import build_diamond_workflow, build_fig3_workflow


@pytest.fixture
def diamond():
    captured = capture_run(build_diamond_workflow(), {"size": 3})
    with TraceStore() as store:
        store.insert_trace(captured.trace)
        yield captured, store


class TestSingleRun:
    def test_fine_grained_focused(self, diamond):
        captured, store = diamond
        result = NaiveEngine(store).lineage(
            captured.run_id, LineageQuery.create("F", "y", [1, 2], ["A", "B"])
        )
        assert [b.key() for b in result.bindings] == [
            ("A", "x", "1"), ("B", "x", "2"),
        ]

    def test_values_returned(self, diamond):
        captured, store = diamond
        result = NaiveEngine(store).lineage(
            captured.run_id, LineageQuery.create("F", "y", [1, 2], ["A", "B"])
        )
        assert {b.value for b in result.bindings} == {"item-1", "item-2"}

    def test_focus_restricts_answer_not_traversal(self, diamond):
        captured, store = diamond
        engine = NaiveEngine(store)
        focused = engine.lineage(
            captured.run_id, LineageQuery.create("wf", "out", [0, 0], ["GEN"])
        )
        assert [b.key() for b in focused.bindings] == [("GEN", "size", "")]
        # NI still walks the whole path: its SQL count is unchanged by focus.
        unfocused = engine.lineage(
            captured.run_id,
            LineageQuery.create("wf", "out", [0, 0], ["GEN", "A", "B", "F"]),
        )
        assert focused.stats.queries == unfocused.stats.queries

    def test_empty_focus_empty_answer(self, diamond):
        captured, store = diamond
        result = NaiveEngine(store).lineage(
            captured.run_id, LineageQuery.create("F", "y", [0, 0], [])
        )
        assert result.bindings == []
        assert result.stats.queries > 0  # traversal still happened

    def test_coarse_query_expands(self, diamond):
        captured, store = diamond
        result = NaiveEngine(store).lineage(
            captured.run_id, LineageQuery.create("wf", "out", [], ["A"])
        )
        assert sorted(b.key() for b in result.bindings) == [
            ("A", "x", "0"), ("A", "x", "1"), ("A", "x", "2"),
        ]

    def test_partial_index(self, diamond):
        captured, store = diamond
        result = NaiveEngine(store).lineage(
            captured.run_id, LineageQuery.create("F", "y", [2], ["A", "B"])
        )
        keys = sorted(b.key() for b in result.bindings)
        assert keys == [
            ("A", "x", "2"),
            ("B", "x", "0"), ("B", "x", "1"), ("B", "x", "2"),
        ]

    def test_unknown_run_returns_nothing(self, diamond):
        _, store = diamond
        result = NaiveEngine(store).lineage(
            "ghost", LineageQuery.create("F", "y", [0, 0], ["A"])
        )
        assert result.bindings == []

    def test_timing_recorded_in_lookup_bucket(self, diamond):
        captured, store = diamond
        result = NaiveEngine(store).lineage(
            captured.run_id, LineageQuery.create("F", "y", [0, 0], ["A"])
        )
        assert result.traversal_seconds == 0.0
        assert result.lookup_seconds > 0.0
        assert result.total_seconds == result.lookup_seconds


class TestGranularityBoundaries:
    def test_coarse_processor_stops_fine_tracking(self):
        """Through a whole-list processor, lineage falls back to the whole
        upstream value (the paper's processor-R discussion)."""
        flow = build_fig3_workflow()
        captured = capture_run(flow, {"v": ["v0", "v1"], "w": "w", "c": ["c0"]})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            result = NaiveEngine(store).lineage(
                captured.run_id,
                LineageQuery.create("P", "Y", [0, 1], ["Q", "R"]),
            )
            keys = sorted(b.key() for b in result.bindings)
            # X1[h] traces to Q:X[h] fine-grained; X3[l] crosses R, which
            # consumed w whole: coarse.
            assert keys == [("Q", "X", "0"), ("R", "X", "")]

    def test_matches_paper_unfolding(self):
        """lin(<P:Y[h,l]>, {Q, R}) = {<Q:X[h]>, <R:X[]>} (Section 2.4)."""
        flow = build_fig3_workflow()
        captured = capture_run(
            flow, {"v": ["v0", "v1", "v2"], "w": "w", "c": ["c0"]}
        )
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            result = NaiveEngine(store).lineage(
                captured.run_id,
                LineageQuery.create("P", "Y", [2, 1], ["Q", "R"]),
            )
            assert sorted(b.key() for b in result.bindings) == [
                ("Q", "X", "2"), ("R", "X", ""),
            ]


class TestMultiRun:
    def test_one_traversal_per_run(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            run_ids = []
            for _ in range(3):
                captured = capture_run(flow, {"size": 2})
                store.insert_trace(captured.trace)
                run_ids.append(captured.run_id)
            engine = NaiveEngine(store)
            query = LineageQuery.create("F", "y", [0, 1], ["A", "B"])
            multi = engine.lineage_multirun(run_ids, query)
            assert sorted(multi.run_ids) == sorted(run_ids)
            for result in multi.per_run.values():
                assert [b.key() for b in result.bindings] == [
                    ("A", "x", "0"), ("B", "x", "1"),
                ]
            single = engine.lineage(run_ids[0], query)
            total_queries = sum(
                r.stats.queries for r in multi.per_run.values()
            )
            assert total_queries == 3 * single.stats.queries
