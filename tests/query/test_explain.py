"""Tests for the cost model (repro.query.explain)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.explain import explain
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import chain_product_workflow, focused_query
from repro.workflow.depths import propagate_depths

from tests.conftest import build_diamond_workflow


class TestCostModel:
    def test_indexproj_lookup_estimate_is_exact(self):
        """The model's INDEXPROJ lookup count equals the measured count."""
        flow = chain_product_workflow(6)
        analysis = propagate_depths(flow)
        captured = capture_run(flow, {"ListSize": 3})
        query = focused_query()
        explanation = explain(analysis, query)
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            result = IndexProjEngine(store, flow, analysis=analysis).lineage(
                captured.run_id, query
            )
            assert explanation.indexproj_lookups == result.stats.queries

    def test_naive_estimate_bounds_measured_lookups(self):
        """NI's measured round-trips never exceed the 2-per-hop bound."""
        flow = chain_product_workflow(6)
        analysis = propagate_depths(flow)
        captured = capture_run(flow, {"ListSize": 3})
        query = focused_query()
        explanation = explain(analysis, query)
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            result = NaiveEngine(store).lineage(captured.run_id, query)
            assert result.stats.queries <= explanation.naive_lookups
            # And the bound is tight enough to be informative (within 4x).
            assert explanation.naive_lookups <= 4 * result.stats.queries

    def test_multi_run_scaling(self):
        analysis = propagate_depths(build_diamond_workflow())
        query = LineageQuery.create("F", "y", [0, 0], ["A"])
        single = explain(analysis, query, runs=1)
        multi = explain(analysis, query, runs=7)
        assert multi.indexproj_lookups == 7 * single.indexproj_lookups
        assert multi.naive_lookups == 7 * single.naive_lookups
        # The traversal is shared: same ports regardless of runs.
        assert multi.indexproj_traversal_ports == single.indexproj_traversal_ports

    def test_recommendation_is_indexproj(self):
        """The paper: INDEXPROJ never does worse than NI."""
        analysis = propagate_depths(build_diamond_workflow())
        for focus in (["GEN"], ["A", "B"], ["GEN", "A", "B", "F"]):
            explanation = explain(
                analysis, LineageQuery.create("F", "y", [0, 0], focus)
            )
            assert explanation.recommendation == "indexproj"

    def test_hops_grow_with_chain_length(self):
        short = explain(
            propagate_depths(chain_product_workflow(5)), focused_query()
        )
        long = explain(
            propagate_depths(chain_product_workflow(20)), focused_query()
        )
        assert long.naive_hops > short.naive_hops
        # INDEXPROJ lookups stay put: one focus processor either way.
        assert long.indexproj_lookups == short.indexproj_lookups == 1

    def test_lookup_ratio(self):
        analysis = propagate_depths(chain_product_workflow(10))
        explanation = explain(analysis, focused_query())
        assert explanation.lookup_ratio > 10

    def test_summary_is_readable(self):
        analysis = propagate_depths(build_diamond_workflow())
        explanation = explain(
            analysis, LineageQuery.create("F", "y", [0, 0], ["A"]), runs=3
        )
        text = explanation.summary()
        assert "3 run(s)" in text
        assert "indexproj" in text

    def test_empty_focus_ratio_handles_zero(self):
        analysis = propagate_depths(build_diamond_workflow())
        explanation = explain(
            analysis, LineageQuery.create("F", "y", [0, 0], [])
        )
        assert explanation.indexproj_lookups == 0
        assert explanation.lookup_ratio == float("inf")
