"""Cross-strategy agreement on hand-built workflows.

The three implementations of Def. 1 — the in-memory reference, the
database-backed naive traversal, and INDEXPROJ — must return the same
binding sets for every query.  (Randomized agreement is in
tests/properties/test_prop_agreement.py; these are the deterministic,
debuggable cases.)
"""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.graph import reference_lineage
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import chain_product_workflow
from repro.testbed.workloads import genes2kegg_workload, protein_discovery_workload

from tests.conftest import build_diamond_workflow, build_fig3_workflow


def assert_all_agree(flow, captured, store, query: LineageQuery):
    reference = reference_lineage(
        captured.trace, query.node, query.port, query.index, query.focus
    )
    naive = NaiveEngine(store).lineage(captured.run_id, query)
    indexproj = IndexProjEngine(store, flow).lineage(captured.run_id, query)
    reference_keys = frozenset(b.key() for b in reference)
    assert naive.binding_keys() == reference_keys, str(query)
    assert indexproj.binding_keys() == reference_keys, str(query)
    # Values must agree too, not just identities.
    naive_values = {b.key(): b.value for b in naive.bindings}
    indexproj_values = {b.key(): b.value for b in indexproj.bindings}
    assert naive_values == indexproj_values


def store_for(flow, inputs, registry=None):
    from repro.engine.executor import WorkflowRunner

    captured = capture_run(flow, inputs, runner=WorkflowRunner(registry))
    store = TraceStore()
    store.insert_trace(captured.trace)
    return captured, store


class TestDiamondAgreement:
    @pytest.fixture(autouse=True)
    def setup(self):
        self.flow = build_diamond_workflow()
        self.captured, self.store = store_for(self.flow, {"size": 3})
        yield
        self.store.close()

    @pytest.mark.parametrize("index", [(0, 0), (1, 2), (2,), ()])
    @pytest.mark.parametrize(
        "focus",
        [("GEN",), ("A",), ("B",), ("A", "B"), ("GEN", "A", "B", "F"), ()],
    )
    def test_queries_from_final_output(self, index, focus):
        query = LineageQuery.create("F", "y", index, focus)
        assert_all_agree(self.flow, self.captured, self.store, query)

    @pytest.mark.parametrize("index", [(0, 0), (1,), ()])
    def test_queries_from_workflow_output(self, index):
        query = LineageQuery.create("wf", "out", index, ("A", "B", "GEN"))
        assert_all_agree(self.flow, self.captured, self.store, query)

    def test_query_from_intermediate_port(self):
        query = LineageQuery.create("A", "y", (1,), ("GEN",))
        assert_all_agree(self.flow, self.captured, self.store, query)


class TestFig3Agreement:
    @pytest.fixture(autouse=True)
    def setup(self):
        self.flow = build_fig3_workflow()
        self.captured, self.store = store_for(
            self.flow, {"v": ["v0", "v1", "v2"], "w": "w", "c": ["c0", "c1"]}
        )
        yield
        self.store.close()

    @pytest.mark.parametrize("index", [(0, 0), (2, 2), (1,), ()])
    @pytest.mark.parametrize("focus", [("Q",), ("R",), ("Q", "R"), ("P",)])
    def test_fig3_queries(self, index, focus):
        query = LineageQuery.create("P", "Y", index, focus)
        assert_all_agree(self.flow, self.captured, self.store, query)


class TestSyntheticAgreement:
    def test_generated_testbed(self):
        flow = chain_product_workflow(5)
        captured, store = store_for(flow, {"ListSize": 4})
        try:
            for index in [(0, 0), (3, 2), (1,), ()]:
                for focus in [("LISTGEN_1",), ("CHAIN1_2", "CHAIN2_4")]:
                    query = LineageQuery.create("2TO1_FINAL", "y", index, focus)
                    assert_all_agree(flow, captured, store, query)
        finally:
            store.close()


class TestWorkloadAgreement:
    def test_genes2kegg(self):
        workload = genes2kegg_workload()
        captured, store = store_for(
            workload.flow, workload.inputs, workload.registry
        )
        try:
            flat = workload.flow.flattened()
            for port, index in [
                ("paths_per_gene", (0,)),
                ("paths_per_gene", (1, 0)),
                ("commonPathways", ()),
            ]:
                for focus in [
                    ("get_pathways_by_genes",),
                    ("flatten_gene_lists",),
                    tuple(flat.processor_names),
                ]:
                    query = LineageQuery.create(workload.name, port, index, focus)
                    assert_all_agree(flat, captured, store, query)
        finally:
            store.close()

    def test_protein_discovery(self):
        workload = protein_discovery_workload(chain_length=5, batch=4)
        captured, store = store_for(
            workload.flow, workload.inputs, workload.registry
        )
        try:
            flat = workload.flow.flattened()
            for focus in [("fetch_abstract",), tuple(flat.processor_names)]:
                query = LineageQuery.create(
                    workload.name, "protein_terms", (2,), focus
                )
                assert_all_agree(flat, captured, store, query)
        finally:
            store.close()
