"""Tests for lineage differencing (repro.query.diff)."""

import pytest

from repro.engine.events import Binding
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.diff import diff_bindings, diff_lineage, diff_multirun
from repro.query.indexproj import IndexProjEngine
from repro.values.index import Index
from repro.workflow.model import PortRef

from tests.conftest import build_diamond_workflow


def binding(node, port, index=(), value=None):
    return Binding(PortRef(node, port), Index.of(index), value=value)


class TestDiffBindings:
    def test_identical_answers(self):
        left = [binding("A", "x", [0], "v")]
        right = [binding("A", "x", [0], "v")]
        diff = diff_bindings(left, right)
        assert diff.is_empty
        assert len(diff.unchanged) == 1
        assert diff.summary() == "1 unchanged, 0 changed, 0 only-left, 0 only-right"

    def test_value_change_detected(self):
        diff = diff_bindings(
            [binding("A", "x", [0], "old")], [binding("A", "x", [0], "new")]
        )
        assert not diff.is_empty
        assert len(diff.changed) == 1
        assert diff.changed[0].left_value == "old"
        assert diff.changed[0].right_value == "new"

    def test_added_and_removed(self):
        diff = diff_bindings(
            [binding("A", "x", [0], "v"), binding("B", "x", [1], "w")],
            [binding("A", "x", [0], "v"), binding("C", "x", [2], "u")],
        )
        assert [b.key() for b in diff.only_left] == [("B", "x", "1")]
        assert [b.key() for b in diff.only_right] == [("C", "x", "2")]
        assert len(diff.unchanged) == 1

    def test_results_sorted_by_key(self):
        diff = diff_bindings(
            [binding("B", "x", [1]), binding("A", "x", [0])], []
        )
        assert [b.key() for b in diff.only_left] == [
            ("A", "x", "0"), ("B", "x", "1"),
        ]


class TestEndToEndDiff:
    def _answer(self, flow, inputs, registry=None):
        from repro.engine.executor import WorkflowRunner

        captured = capture_run(flow, inputs, runner=WorkflowRunner(registry))
        store = TraceStore()
        store.insert_trace(captured.trace)
        engine = IndexProjEngine(store, flow)
        result = engine.lineage(
            captured.run_id,
            LineageQuery.create("F", "y", [0, 1], ["A", "B"]),
        )
        store.close()
        return result

    def test_same_inputs_no_diff(self):
        flow = build_diamond_workflow()
        left = self._answer(flow, {"size": 3})
        right = self._answer(flow, {"size": 3})
        assert diff_lineage(left, right).is_empty

    def test_changed_service_version_changes_values(self):
        """Two 'versions' of the workflow: the generator's payload differs,
        so lineage identities match but values diverge — the cross-version
        comparison scenario of Section 3.4."""
        flow = build_diamond_workflow()
        left = self._answer(flow, {"size": 3})

        from repro.engine.processors import default_registry

        v2_registry = default_registry().extended()

        def v2_generator(inputs, config):
            size = inputs.get("size", 0)
            return {"list": [f"item-v2-{i}" for i in range(int(size))]}

        v2_registry.register("list_generator", v2_generator)
        right = self._answer(flow, {"size": 3}, registry=v2_registry)
        diff = diff_lineage(left, right)
        assert not diff.only_left and not diff.only_right
        assert len(diff.changed) == 2  # both focus bindings changed payloads

    def test_multirun_sweep_diff(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            run_ids = []
            for size in (3, 3, 4):
                captured = capture_run(flow, {"size": size})
                store.insert_trace(captured.trace)
                run_ids.append(captured.run_id)
            engine = IndexProjEngine(store, flow)
            multi = engine.lineage_multirun(
                run_ids, LineageQuery.create("F", "y", [0, 1], ["A", "B"])
            )
            diffs = diff_multirun(multi, baseline_run=run_ids[0])
            assert set(diffs) == set(run_ids[1:])
            assert diffs[run_ids[1]].is_empty      # identical sweep point
            assert diffs[run_ids[2]].is_empty      # same elements 0/1 exist
            # A sweep point that removes elements shows up as only-left.
            captured_small = capture_run(flow, {"size": 1})
            store.insert_trace(captured_small.trace)
            multi = engine.lineage_multirun(
                run_ids + [captured_small.run_id],
                LineageQuery.create("F", "y", [0, 1], ["A", "B"]),
            )
            diffs = diff_multirun(multi, baseline_run=run_ids[0])
            small_diff = diffs[captured_small.run_id]
            assert [b.key() for b in small_diff.only_left] == [("B", "x", "1")]

    def test_unknown_baseline_rejected(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            captured = capture_run(flow, {"size": 2})
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, flow)
            multi = engine.lineage_multirun(
                [captured.run_id],
                LineageQuery.create("F", "y", [0, 0], ["A"]),
            )
            with pytest.raises(KeyError):
                diff_multirun(multi, baseline_run="ghost")
