"""Tests for value-predicated queries (repro.query.value_search)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import StoreStats, TraceStore
from repro.query.value_search import find_value, trace_value

from tests.conftest import build_diamond_workflow


@pytest.fixture(scope="module")
def diamond():
    flow = build_diamond_workflow()
    captured = capture_run(flow, {"size": 3})
    store = TraceStore()
    store.insert_trace(captured.trace)
    yield flow, captured, store
    store.close()


class TestFindValue:
    def test_exact_atomic_value(self, diamond):
        _, captured, store = diamond
        hits = find_value(store, captured.run_id, value="item-1-a")
        keys = {(h.binding.node, h.binding.port, h.role) for h in hits}
        # Produced by A, transferred to F, consumed by F.
        assert ("A", "y", "out") in keys
        assert ("F", "a", "in") in keys
        assert any(role == "xfer" for _, _, role in keys)

    def test_exact_list_value(self, diamond):
        _, captured, store = diamond
        hits = find_value(
            store, captured.run_id, value=["item-0", "item-1", "item-2"]
        )
        assert any(h.binding.node == "GEN" for h in hits)

    def test_substring_search_sees_inside_lists(self, diamond):
        _, captured, store = diamond
        hits = find_value(store, captured.run_id, substring="item-2")
        nodes = {h.binding.node for h in hits}
        assert "GEN" in nodes  # the generator's list contains item-2
        assert "F" in nodes    # concatenations mention it too

    def test_substring_escapes_like_metacharacters(self, diamond):
        _, captured, store = diamond
        assert find_value(store, captured.run_id, substring="item-%") == []
        assert find_value(store, captured.run_id, substring="item_0") == []

    def test_no_match(self, diamond):
        _, captured, store = diamond
        assert find_value(store, captured.run_id, value="ghost") == []

    def test_argument_validation(self, diamond):
        _, captured, store = diamond
        with pytest.raises(ValueError):
            find_value(store, captured.run_id)
        with pytest.raises(ValueError):
            find_value(store, captured.run_id, value="x", substring="y")

    def test_stats_counted(self, diamond):
        _, captured, store = diamond
        stats = StoreStats()
        find_value(store, captured.run_id, value="item-0", stats=stats)
        assert stats.queries == 2  # io scan + xfer scan

    def test_works_on_interned_store(self):
        flow = build_diamond_workflow()
        captured = capture_run(flow, {"size": 2})
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            hits = find_value(store, captured.run_id, value="item-1-b")
            assert hits
            assert all(h.binding.value == "item-1-b" for h in hits)


class TestTraceValue:
    def test_origins_and_affected(self, diamond):
        flow, captured, store = diamond
        trace = trace_value(
            store, flow, captured.run_id, value="item-2-a",
            focus=["GEN", "F"],
        )
        assert trace.hits
        # Upstream: the generator's size parameter.
        assert ("GEN", "size", "") in {b.key() for b in trace.origins}
        # Downstream: the whole F row built from a[2].
        affected_keys = {b.key() for b in trace.affected}
        assert {("F", "y", f"2.{j}") for j in range(3)} <= affected_keys

    def test_unknown_value_yields_empty_trace(self, diamond):
        flow, captured, store = diamond
        trace = trace_value(store, flow, captured.run_id, value="nope")
        assert trace.hits == []
        assert trace.origins == []
        assert trace.affected == []
