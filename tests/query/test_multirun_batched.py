"""Tests for batched multi-run execution (beyond-paper optimization)."""

from repro.provenance.capture import capture_run
from repro.provenance.store import StoreStats, TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.values.index import Index

from tests.conftest import build_diamond_workflow


def populated(runs=4, sizes=None):
    flow = build_diamond_workflow()
    store = TraceStore()
    run_ids = []
    for i in range(runs):
        size = sizes[i] if sizes else 3
        captured = capture_run(flow, {"size": size})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return flow, store, run_ids


class TestBatchedMultirun:
    def test_answers_match_per_run_loop(self):
        flow, store, run_ids = populated()
        try:
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create("F", "y", [1, 2], ["A", "B"])
            looped = engine.lineage_multirun(run_ids, query)
            batched = engine.lineage_multirun_batched(run_ids, query)
            assert set(batched.per_run) == set(looped.per_run)
            for run_id in run_ids:
                assert (
                    batched.per_run[run_id].binding_keys()
                    == looped.per_run[run_id].binding_keys()
                )
        finally:
            store.close()

    def test_round_trips_scale_with_chunks_not_keys(self):
        flow, store, run_ids = populated(runs=6)
        try:
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create("F", "y", [0, 0], ["A", "B"])
            batched = engine.lineage_multirun_batched(run_ids, query)
            # Two planned lookups (A:x, B:x) x 6 runs = 12 keys, all
            # within one default-size chunk -> exactly one statement.
            stats = batched.per_run[run_ids[0]].stats
            assert stats.queries == 1
            assert stats.batch_lookups == 1
            assert stats.batch_keys == 12
            assert batched.sql_queries == 1
            looped = engine.lineage_multirun(run_ids, query)
            assert looped.sql_queries == 12
        finally:
            store.close()

    def test_chunk_size_controls_round_trips(self):
        flow, store, run_ids = populated(runs=6)
        try:
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create("F", "y", [0, 0], ["A", "B"])
            # 12 keys at chunk 5 -> ceil(12/5) = 3 statements.
            batched = engine.lineage_multirun_batched(
                run_ids, query, chunk_size=5
            )
            assert batched.sql_queries == 3
            reference = engine.lineage_multirun(run_ids, query)
            assert (
                batched.binding_keys_by_run()
                == reference.binding_keys_by_run()
            )
        finally:
            store.close()

    def test_runs_with_different_inputs(self):
        flow, store, run_ids = populated(runs=3, sizes=[2, 3, 1])
        try:
            engine = IndexProjEngine(store, flow)
            # Index [0, 0] exists in every run; values differ per run only
            # in identity of elements, not keys.
            query = LineageQuery.create("F", "y", [2, 2], ["A", "B"])
            batched = engine.lineage_multirun_batched(run_ids, query)
            # Only the size-3 run has element 2.
            assert batched.per_run[run_ids[0]].bindings == []
            assert len(batched.per_run[run_ids[1]].bindings) == 2
            assert batched.per_run[run_ids[2]].bindings == []
        finally:
            store.close()

    def test_empty_scope(self):
        flow, store, _ = populated(runs=1)
        try:
            engine = IndexProjEngine(store, flow)
            result = engine.lineage_multirun_batched(
                [], LineageQuery.create("F", "y", [0, 0], ["A"])
            )
            assert result.per_run == {}
        finally:
            store.close()

    def test_store_multi_lookup_grouping(self):
        flow, store, run_ids = populated(runs=2)
        try:
            stats = StoreStats()
            grouped = store.find_xform_inputs_matching_multi(
                run_ids, "A", "x", Index(1), stats
            )
            assert set(grouped) == set(run_ids)
            for bindings in grouped.values():
                assert [b.key() for b in bindings] == [("A", "x", "1")]
            assert stats.queries == 1
        finally:
            store.close()
