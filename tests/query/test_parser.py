"""Tests for the textual query notation (repro.query.parser)."""

import pytest

from repro.query.base import LineageQuery
from repro.query.parser import QueryParseError, format_query, parse_query
from repro.values.index import Index


class TestParseQuery:
    def test_full_paper_notation(self):
        query = parse_query("lin(<P:Y[0.1]>, {Q, R})")
        assert query.node == "P"
        assert query.port == "Y"
        assert query.index == Index(0, 1)
        assert query.focus == frozenset({"Q", "R"})

    def test_without_angle_brackets(self):
        query = parse_query("lin(P:Y[2], {Q})")
        assert (query.node, query.port, query.index) == ("P", "Y", Index(2))

    def test_empty_index(self):
        assert parse_query("lin(<P:Y[]>, {Q})").index == Index()

    def test_missing_index_brackets(self):
        assert parse_query("lin(<P:Y>, {Q})").index == Index()

    def test_bare_binding(self):
        query = parse_query("wf:out[1.2]")
        assert (query.node, query.port) == ("wf", "out")
        assert query.index == Index(1, 2)
        assert query.focus == frozenset()

    def test_empty_focus(self):
        assert parse_query("lin(<P:Y[0]>, {})").focus == frozenset()

    def test_whitespace_tolerated(self):
        query = parse_query("  lin( < P : Y [ 0.1 ] > , { Q , R } )  ")
        assert query.index == Index(0, 1)
        assert query.focus == frozenset({"Q", "R"})

    def test_realistic_processor_names(self):
        query = parse_query(
            "lin(genes2kegg:paths_per_gene[0], {get_pathways_by_genes})"
        )
        assert query.node == "genes2kegg"
        assert query.focus == frozenset({"get_pathways_by_genes"})

    def test_lin_without_focus(self):
        query = parse_query("lin(P:Y[3])")
        assert query.index == Index(3)
        assert query.focus == frozenset()


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "lin(PY[0], {Q})",          # no colon
            "lin(<P:Y[0]> {Q})",        # missing comma
            "lin(<P:Y[0]>, {Q)",        # unterminated focus
            "lin(<P:Y[0]>, {Q,,R})",    # empty name
            "lin(<P:Y[x]>, {Q})",       # non-numeric index
            ":port[0]",                 # empty node
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "query",
        [
            LineageQuery.create("P", "Y", [0, 1], ["Q", "R"]),
            LineageQuery.create("wf", "out", [], []),
            LineageQuery.create("A", "x", [5], ["A"]),
        ],
    )
    def test_format_parse_roundtrip(self, query):
        assert parse_query(format_query(query)) == query

    def test_format_matches_lineagequery_str(self):
        query = LineageQuery.create("P", "Y", [0], ["Q"])
        # Both renderings parse back to the same query.
        assert parse_query(format_query(query)) == parse_query(str(query))
