"""Tests for the textual query notation (repro.query.parser)."""

import pytest

from repro.query.base import LineageQuery
from repro.query.parser import QueryParseError, format_query, parse_query
from repro.values.index import Index


class TestParseQuery:
    def test_full_paper_notation(self):
        query = parse_query("lin(<P:Y[0.1]>, {Q, R})")
        assert query.node == "P"
        assert query.port == "Y"
        assert query.index == Index(0, 1)
        assert query.focus == frozenset({"Q", "R"})

    def test_without_angle_brackets(self):
        query = parse_query("lin(P:Y[2], {Q})")
        assert (query.node, query.port, query.index) == ("P", "Y", Index(2))

    def test_empty_index(self):
        assert parse_query("lin(<P:Y[]>, {Q})").index == Index()

    def test_missing_index_brackets(self):
        assert parse_query("lin(<P:Y>, {Q})").index == Index()

    def test_bare_binding(self):
        query = parse_query("wf:out[1.2]")
        assert (query.node, query.port) == ("wf", "out")
        assert query.index == Index(1, 2)
        assert query.focus == frozenset()

    def test_empty_focus(self):
        assert parse_query("lin(<P:Y[0]>, {})").focus == frozenset()

    def test_whitespace_tolerated(self):
        query = parse_query("  lin( < P : Y [ 0.1 ] > , { Q , R } )  ")
        assert query.index == Index(0, 1)
        assert query.focus == frozenset({"Q", "R"})

    def test_realistic_processor_names(self):
        query = parse_query(
            "lin(genes2kegg:paths_per_gene[0], {get_pathways_by_genes})"
        )
        assert query.node == "genes2kegg"
        assert query.focus == frozenset({"get_pathways_by_genes"})

    def test_lin_without_focus(self):
        query = parse_query("lin(P:Y[3])")
        assert query.index == Index(3)
        assert query.focus == frozenset()


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "lin(PY[0], {Q})",          # no colon
            "lin(<P:Y[0]> {Q})",        # missing comma
            "lin(<P:Y[0]>, {Q)",        # unterminated focus
            "lin(<P:Y[0]>, {Q,,R})",    # empty name
            "lin(<P:Y[x]>, {Q})",       # non-numeric index
            ":port[0]",                 # empty node
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "query",
        [
            LineageQuery.create("P", "Y", [0, 1], ["Q", "R"]),
            LineageQuery.create("wf", "out", [], []),
            LineageQuery.create("A", "x", [5], ["A"]),
        ],
    )
    def test_format_parse_roundtrip(self, query):
        assert parse_query(format_query(query)) == query

    def test_format_matches_lineagequery_str(self):
        query = LineageQuery.create("P", "Y", [0], ["Q"])
        # Both renderings parse back to the same query.
        assert parse_query(format_query(query)) == parse_query(str(query))


class TestMalformedLin:
    """Error paths of the ``lin(...)`` wrapper itself."""

    @pytest.mark.parametrize(
        "text",
        [
            "lin()",                      # no binding at all
            "lin( , {Q})",                # comma but empty binding
            "lin(<P:Y[0]>, {Q}) extra",   # trailing garbage -> bare-binding
            "lin(<P:Y[0]>, {Q, })",       # trailing comma in focus
            "lin(<P:Y[0]>, { , })",       # only separators in focus
            "lin(<P:Y[0]>, {Q} {R})",     # two focus sets
            "lin(<P:Y[0]>, Q})",          # focus brace opened too late
            "lin(<P:Y[-1]>, {Q})",        # negative index component
            "lin(<P:Y[0..1]>, {Q})",      # empty index component
            "lin(<P:Y[0.]>, {Q})",        # trailing index dot
            "lin(<P:Y:Z[0]>, {Q})",       # double colon in binding
            "lin(<P Y[0]>, {Q})",         # missing colon separator
            "lin(<:Y[0]>, {Q})",          # empty node name
            "lin(<P:[0]>, {Q})",          # empty port name
            "",                           # nothing
            "lin",                        # bare keyword
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)

    def test_error_message_names_the_binding(self):
        with pytest.raises(QueryParseError, match="malformed binding"):
            parse_query("lin(<P..Y[0]>, {Q})")

    def test_unterminated_focus_message(self):
        with pytest.raises(QueryParseError, match="unterminated focus"):
            parse_query("lin(<P:Y[0]>, {Q, R)")

    def test_missing_comma_before_focus_message(self):
        with pytest.raises(QueryParseError, match="expected ','"):
            parse_query("lin(<P:Y[0]> {Q})")


class TestEmptyFocusForms:
    """Every way of writing 'no focus set' parses to frozenset()."""

    @pytest.mark.parametrize(
        "text",
        [
            "lin(<P:Y[0]>, {})",
            "lin(<P:Y[0]>, {  })",
            "lin(<P:Y[0]>)",
            "lin(P:Y[0])",
            "P:Y[0]",
        ],
    )
    def test_no_focus(self, text):
        assert parse_query(text).focus == frozenset()

    def test_empty_focus_roundtrips_through_format(self):
        query = LineageQuery.create("P", "Y", [0], [])
        rendered = format_query(query)
        assert rendered == "lin(<P:Y[0]>, {})"
        assert parse_query(rendered) == query


class TestNestedIndices:
    """Deeply nested index paths survive parse/format round-trips."""

    @pytest.mark.parametrize(
        "encoded,parts",
        [
            ("0", (0,)),
            ("1.2", (1, 2)),
            ("3.1.4", (3, 1, 4)),
            ("0.0.0.0.0", (0, 0, 0, 0, 0)),
            ("12.345.6", (12, 345, 6)),
        ],
    )
    def test_parse_nested(self, encoded, parts):
        query = parse_query(f"lin(<P:Y[{encoded}]>, {{Q}})")
        assert query.index == Index(*parts)
        assert query.index.encode() == encoded

    @pytest.mark.parametrize("depth", [0, 1, 2, 5, 9])
    def test_roundtrip_any_depth(self, depth):
        query = LineageQuery.create(
            "node", "port", list(range(depth)), ["F1", "F2"]
        )
        assert parse_query(format_query(query)) == query

    def test_internal_whitespace_in_index(self):
        query = parse_query("lin(<P:Y[ 1 . 2 . 3 ]>, {Q})")
        assert query.index == Index(1, 2, 3)
