"""Tests for shared query/result types (repro.query.base)."""

from repro.engine.events import Binding
from repro.provenance.store import StoreStats
from repro.query.base import LineageQuery, LineageResult, MultiRunResult
from repro.values.index import Index
from repro.workflow.model import PortRef


def result_with(run_id, keys):
    bindings = [
        Binding(PortRef(node, port), Index.decode(idx), value=f"v-{idx}")
        for node, port, idx in keys
    ]
    return LineageResult(
        query=LineageQuery.create("P", "Y", [0], ["A"]),
        run_id=run_id,
        bindings=bindings,
        stats=StoreStats(queries=3, rows=9),
        traversal_seconds=0.25,
        lookup_seconds=0.75,
    )


class TestLineageQuery:
    def test_create_normalizes_inputs(self):
        query = LineageQuery.create("P", "Y", (1, 2), ("A", "A", "B"))
        assert query.index == Index(1, 2)
        assert query.focus == frozenset({"A", "B"})

    def test_create_accepts_index_object(self):
        assert LineageQuery.create("P", "Y", Index(3)).index == Index(3)

    def test_str_notation(self):
        text = str(LineageQuery.create("P", "Y", [0, 1], ["B", "A"]))
        assert text == "lin(<P:Y[0.1]>, {A, B})"

    def test_hashable(self):
        a = LineageQuery.create("P", "Y", [0], ["A"])
        b = LineageQuery.create("P", "Y", [0], ["A"])
        assert len({a, b}) == 1


class TestLineageResult:
    def test_total_seconds(self):
        result = result_with("r1", [("A", "x", "0")])
        assert result.total_seconds == 1.0

    def test_binding_keys_value_independent(self):
        left = result_with("r1", [("A", "x", "0"), ("B", "x", "1")])
        right = result_with("r2", [("B", "x", "1"), ("A", "x", "0")])
        assert left.binding_keys() == right.binding_keys()


class TestMultiRunResult:
    def make(self):
        return MultiRunResult(
            query=LineageQuery.create("P", "Y", [0], ["A"]),
            per_run={
                "r1": result_with("r1", [("A", "x", "0")]),
                "r2": result_with("r2", [("A", "x", "1")]),
            },
            traversal_seconds=0.5,
            lookup_seconds=1.5,
        )

    def test_run_ids_order(self):
        assert self.make().run_ids == ["r1", "r2"]

    def test_total_seconds(self):
        assert self.make().total_seconds == 2.0

    def test_all_bindings(self):
        grouped = self.make().all_bindings()
        assert set(grouped) == {"r1", "r2"}
        assert [b.key() for b in grouped["r1"]] == [("A", "x", "0")]
