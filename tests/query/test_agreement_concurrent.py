"""Differential tests: the concurrent query paths agree with sequential.

The parallel fan-out (:meth:`IndexProjEngine.lineage_multirun_parallel`)
and the concurrent batch API (:meth:`ProvenanceService.lineage_many`) are
pure performance features — every answer must be bit-identical to what
the sequential path returns, for any worker count, any run order, and any
ordering of the query batch.  A fixed seed matrix of randomized workloads
(the same generator the hypothesis properties use) pins that down
deterministically.
"""

from __future__ import annotations

import random

import pytest

from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.service import ProvenanceService

from tests.conftest import (
    build_diamond_workflow,
    estimated_instances,
    make_random_workflow,
    run_random_case,
)
from tests.properties.test_prop_agreement import random_query

#: Seeds chosen to pass the instance-count guard and cover dot/cross
#: iteration, defaulted ports, and multi-level nesting.
SEED_MATRIX = [0, 1, 2, 5, 8, 13, 21, 42]


def _result_fingerprint(result):
    """Keys *and* values per run — full observable answer."""
    return {
        run_id: {b.key(): repr(b.value) for b in res.bindings}
        for run_id, res in result.per_run.items()
    }


class TestParallelMultirunAgreement:
    @pytest.mark.parametrize("seed", SEED_MATRIX)
    def test_parallel_equals_sequential_on_random_workloads(
        self, tmp_path, seed
    ):
        case = make_random_workflow(seed)
        if estimated_instances(case) > 250:
            pytest.skip("instance count guard (mirrors property test)")
        store = TraceStore(str(tmp_path / f"rand{seed}.db"))
        run_ids = []
        for i in range(4):
            captured = run_random_case(case)
            store.insert_trace(captured.trace)
            run_ids.append(captured.run_id)
        engine = IndexProjEngine(store, case.flow)
        rng = random.Random(seed * 7919)
        for trial in range(3):
            query = random_query(case, captured, rng)
            sequential = engine.lineage_multirun(run_ids, query)
            for workers in (2, 3, 4):
                parallel = engine.lineage_multirun_parallel(
                    run_ids, query, max_workers=workers
                )
                assert _result_fingerprint(parallel) == _result_fingerprint(
                    sequential
                ), f"seed={seed} trial={trial} workers={workers}"
        store.close()

    @pytest.mark.parametrize("seed", SEED_MATRIX[:4])
    def test_run_order_is_preserved_and_irrelevant(self, tmp_path, seed):
        """Shuffling the scope permutes the result mapping, nothing else."""
        case = make_random_workflow(seed)
        if estimated_instances(case) > 250:
            pytest.skip("instance count guard (mirrors property test)")
        store = TraceStore(str(tmp_path / f"rand{seed}.db"))
        run_ids = []
        for i in range(4):
            captured = run_random_case(case)
            store.insert_trace(captured.trace)
            run_ids.append(captured.run_id)
        engine = IndexProjEngine(store, case.flow)
        query = random_query(case, captured, random.Random(seed))
        forward = engine.lineage_multirun_parallel(
            run_ids, query, max_workers=3
        )
        shuffled = list(run_ids)
        random.Random(seed + 1).shuffle(shuffled)
        backward = engine.lineage_multirun_parallel(
            shuffled, query, max_workers=3
        )
        # Result mapping follows the caller's order...
        assert list(forward.per_run) == run_ids
        assert list(backward.per_run) == shuffled
        # ...and per-run answers are order-independent.
        assert _result_fingerprint(forward) == _result_fingerprint(backward)
        store.close()


class TestLineageManyAgreement:
    @pytest.fixture()
    def service(self, tmp_path):
        service = ProvenanceService(str(tmp_path / "svc.db"))
        flow = build_diamond_workflow()
        service.register_workflow(flow)
        for _ in range(6):
            service.run(flow.name, {"size": 3})
        yield service
        service.close()

    QUERIES = [
        "lin(<wf:out[]>, {GEN, A, B, F})",
        "lin(<wf:out[0.0]>, {A})",
        "lin(<wf:out[1]>, {GEN, B})",
        "lin(<F:y[2]>, {A, B})",
        "lin(<A:y[0]>, {GEN})",
        "lin(<wf:out[]>, {})",
    ]

    def test_batch_equals_sequential_per_query(self, service):
        sequential = [service.lineage(q) for q in self.QUERIES]
        concurrent = service.lineage_many(self.QUERIES, max_workers=4)
        assert len(concurrent) == len(sequential)
        for seq, conc in zip(sequential, concurrent):
            assert _result_fingerprint(conc) == _result_fingerprint(seq)

    def test_batch_order_independence(self, service):
        baseline = {
            q: _result_fingerprint(r)
            for q, r in zip(
                self.QUERIES, service.lineage_many(self.QUERIES, max_workers=4)
            )
        }
        for perm_seed in (7, 23):
            order = list(self.QUERIES)
            random.Random(perm_seed).shuffle(order)
            results = service.lineage_many(order, max_workers=3)
            # Results come back in the order given, answers unchanged.
            for q, result in zip(order, results):
                assert _result_fingerprint(result) == baseline[q], q

    def test_batch_with_parallel_runs_inside(self, service):
        """lineage(workers=N) nested under lineage_many stays correct."""
        sequential = service.lineage(self.QUERIES[0])
        parallel = service.lineage(self.QUERIES[0], workers=4)
        assert _result_fingerprint(parallel) == _result_fingerprint(sequential)

    def test_empty_batch(self, service):
        assert service.lineage_many([]) == []
