"""Tests for the INDEXPROJ strategy (repro.query.indexproj)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine, TraceQuery, build_plan
from repro.values.index import Index
from repro.workflow.depths import propagate_depths

from tests.conftest import build_diamond_workflow, build_fig3_workflow


@pytest.fixture
def diamond():
    flow = build_diamond_workflow()
    captured = capture_run(flow, {"size": 3})
    with TraceStore() as store:
        store.insert_trace(captured.trace)
        yield flow, captured, store


class TestPlanning:
    def test_plan_is_store_free(self):
        analysis = propagate_depths(build_diamond_workflow())
        plan = build_plan(
            analysis, LineageQuery.create("F", "y", [1, 2], ["A", "B"])
        )
        assert set(plan.trace_queries) == {
            TraceQuery("A", "x", Index(1)),
            TraceQuery("B", "x", Index(2)),
        }

    def test_plan_covers_only_focus_processors(self):
        analysis = propagate_depths(build_diamond_workflow())
        plan = build_plan(
            analysis, LineageQuery.create("F", "y", [1, 2], ["GEN"])
        )
        assert {tq.processor for tq in plan.trace_queries} == {"GEN"}

    def test_plan_from_workflow_output(self):
        analysis = propagate_depths(build_diamond_workflow())
        plan = build_plan(
            analysis, LineageQuery.create("wf", "out", [0, 1], ["A", "B"])
        )
        assert set(plan.trace_queries) == {
            TraceQuery("A", "x", Index(0)),
            TraceQuery("B", "x", Index(1)),
        }

    def test_plan_index_projected_through_coarse_processor(self):
        analysis = propagate_depths(build_fig3_workflow())
        plan = build_plan(
            analysis, LineageQuery.create("P", "Y", [2, 1], ["Q", "R"])
        )
        assert set(plan.trace_queries) == {
            TraceQuery("Q", "X", Index(2)),   # fine through Q
            TraceQuery("R", "X", Index()),    # whole through R
        }

    def test_empty_focus_plans_no_queries(self):
        analysis = propagate_depths(build_diamond_workflow())
        plan = build_plan(analysis, LineageQuery.create("F", "y", [0, 0], []))
        assert plan.trace_queries == ()
        assert plan.visited_ports > 0  # traversal still walks the graph

    def test_visited_ports_bounded_by_graph(self):
        flow = build_diamond_workflow()
        analysis = propagate_depths(flow)
        plan = build_plan(
            analysis, LineageQuery.create("wf", "out", [0, 0], ["GEN"])
        )
        total_ports = len(list(flow.iter_port_refs()))
        assert 0 < plan.visited_ports <= total_ports

    def test_plan_len(self):
        analysis = propagate_depths(build_diamond_workflow())
        plan = build_plan(
            analysis, LineageQuery.create("F", "y", [0, 0], ["A", "B"])
        )
        assert len(plan) == 2


class TestExecution:
    def test_lineage_matches_expected(self, diamond):
        flow, captured, store = diamond
        engine = IndexProjEngine(store, flow)
        result = engine.lineage(
            captured.run_id, LineageQuery.create("F", "y", [1, 2], ["A", "B"])
        )
        assert [b.key() for b in result.bindings] == [
            ("A", "x", "1"), ("B", "x", "2"),
        ]
        assert {b.value for b in result.bindings} == {"item-1", "item-2"}

    def test_one_sql_query_per_focus_port(self, diamond):
        flow, captured, store = diamond
        engine = IndexProjEngine(store, flow)
        result = engine.lineage(
            captured.run_id, LineageQuery.create("F", "y", [1, 2], ["A", "B"])
        )
        assert result.stats.queries == 2

    def test_focus_shrinks_trace_access(self, diamond):
        flow, captured, store = diamond
        engine = IndexProjEngine(store, flow)
        focused = engine.lineage(
            captured.run_id, LineageQuery.create("wf", "out", [0, 0], ["GEN"])
        )
        unfocused = engine.lineage(
            captured.run_id,
            LineageQuery.create("wf", "out", [0, 0], ["GEN", "A", "B", "F"]),
        )
        assert focused.stats.queries < unfocused.stats.queries

    def test_timing_split(self, diamond):
        flow, captured, store = diamond
        engine = IndexProjEngine(store, flow, cache_plans=False)
        result = engine.lineage(
            captured.run_id, LineageQuery.create("F", "y", [0, 0], ["A"])
        )
        assert result.traversal_seconds > 0.0
        assert result.lookup_seconds > 0.0
        assert result.total_seconds == pytest.approx(
            result.traversal_seconds + result.lookup_seconds
        )

    def test_unknown_run_returns_nothing(self, diamond):
        flow, _, store = diamond
        engine = IndexProjEngine(store, flow)
        result = engine.lineage(
            "ghost", LineageQuery.create("F", "y", [0, 0], ["A"])
        )
        assert result.bindings == []


class TestPlanCache:
    def test_cache_returns_same_plan_object(self, diamond):
        flow, _, store = diamond
        engine = IndexProjEngine(store, flow, cache_plans=True)
        query = LineageQuery.create("F", "y", [0, 0], ["A"])
        first, _ = engine.plan(query)
        second, _ = engine.plan(query)
        assert first is second

    def test_cache_distinguishes_index_and_focus(self, diamond):
        flow, _, store = diamond
        engine = IndexProjEngine(store, flow, cache_plans=True)
        base, _ = engine.plan(LineageQuery.create("F", "y", [0, 0], ["A"]))
        other_index, _ = engine.plan(LineageQuery.create("F", "y", [0, 1], ["A"]))
        other_focus, _ = engine.plan(LineageQuery.create("F", "y", [0, 0], ["B"]))
        assert base is not other_index
        assert base is not other_focus

    def test_cache_disabled_builds_fresh(self, diamond):
        flow, _, store = diamond
        engine = IndexProjEngine(store, flow, cache_plans=False)
        query = LineageQuery.create("F", "y", [0, 0], ["A"])
        first, _ = engine.plan(query)
        second, _ = engine.plan(query)
        assert first is not second

    def test_prebuilt_analysis_injection(self, diamond):
        flow, captured, store = diamond
        analysis = propagate_depths(flow)
        engine = IndexProjEngine(store, flow, analysis=analysis)
        assert engine.analysis is analysis
        result = engine.lineage(
            captured.run_id, LineageQuery.create("F", "y", [0, 0], ["A"])
        )
        assert result.bindings


class TestMultiRun:
    def test_plan_shared_across_runs(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            run_ids = []
            for _ in range(4):
                captured = capture_run(flow, {"size": 2})
                store.insert_trace(captured.trace)
                run_ids.append(captured.run_id)
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create("F", "y", [0, 1], ["A", "B"])
            multi = engine.lineage_multirun(run_ids, query)
            assert sorted(multi.run_ids) == sorted(run_ids)
            for result in multi.per_run.values():
                assert [b.key() for b in result.bindings] == [
                    ("A", "x", "0"), ("B", "x", "1"),
                ]
                # exactly one lookup per focus input port, per run
                assert result.stats.queries == 2

    def test_multirun_timing_buckets(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            captured = capture_run(flow, {"size": 2})
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, flow, cache_plans=False)
            multi = engine.lineage_multirun(
                [captured.run_id], LineageQuery.create("F", "y", [0, 0], ["A"])
            )
            assert multi.traversal_seconds > 0.0
            assert multi.lookup_seconds > 0.0
            assert multi.total_seconds == pytest.approx(
                multi.traversal_seconds + multi.lookup_seconds
            )
