"""Tests for user views (repro.query.views)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.views import (
    UserView,
    focus_for_groups,
    group_summary,
    rollup,
)
from repro.workflow.model import WorkflowError

from tests.conftest import build_diamond_workflow


@pytest.fixture
def view():
    return UserView("stages", {"branches": ["A", "B"], "source": ["GEN"]})


class TestUserView:
    def test_group_membership(self, view):
        assert view.members("branches") == frozenset({"A", "B"})
        assert view.group_of("A") == "branches"
        assert view.group_of("GEN") == "source"
        assert view.group_of("F") is None

    def test_group_names(self, view):
        assert set(view.group_names) == {"branches", "source"}

    def test_unknown_group_raises(self, view):
        with pytest.raises(WorkflowError):
            view.members("nope")

    def test_overlapping_groups_rejected(self):
        with pytest.raises(WorkflowError, match="belongs to both"):
            UserView("bad", {"g1": ["A"], "g2": ["A"]})

    def test_empty_group_rejected(self):
        with pytest.raises(WorkflowError, match="empty"):
            UserView("bad", {"g1": []})

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowError):
            UserView("", {})

    def test_validate_against_flow(self, view):
        view.validate_against(build_diamond_workflow())
        ghost = UserView("ghost", {"g": ["NOPE"]})
        with pytest.raises(WorkflowError, match="unknown processor"):
            ghost.validate_against(build_diamond_workflow())


class TestFocusExpansion:
    def test_expand_single_group(self, view):
        assert focus_for_groups(view, ["branches"]) == frozenset({"A", "B"})

    def test_expand_multiple_groups(self, view):
        assert focus_for_groups(view, ["branches", "source"]) == frozenset(
            {"A", "B", "GEN"}
        )

    def test_expand_nothing(self, view):
        assert focus_for_groups(view, []) == frozenset()


class TestRollup:
    def test_end_to_end_group_query(self, view):
        """Ask lineage at view granularity: focus = a group, answer rolled
        up to groups."""
        flow = build_diamond_workflow()
        captured = capture_run(flow, {"size": 2})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create(
                "wf", "out", [0, 1], focus_for_groups(view, ["branches"])
            )
            result = engine.lineage(captured.run_id, query)
            grouped = rollup(result.bindings, view)
            assert {entry.group for entry in grouped} == {"branches"}
            summary = group_summary(grouped)
            assert sorted(b.key() for b in summary["branches"]) == [
                ("A", "x", "0"), ("B", "x", "1"),
            ]

    def test_ungrouped_processor_keeps_own_name(self, view):
        flow = build_diamond_workflow()
        captured = capture_run(flow, {"size": 2})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create("wf", "out", [0, 0], ["F", "GEN"])
            result = engine.lineage(captured.run_id, query)
            grouped = rollup(result.bindings, view)
            groups = {entry.group for entry in grouped}
            assert "F" in groups          # ungrouped: own name
            assert "source" in groups     # GEN's group

    def test_rollup_deduplicates_and_sorts(self, view):
        from repro.engine.events import Binding
        from repro.values.index import Index
        from repro.workflow.model import PortRef

        binding = Binding(PortRef("A", "x"), Index(0), value="v")
        grouped = rollup([binding, binding], view)
        assert len(grouped) == 1
        assert grouped[0].group == "branches"


class TestFocusExpansionErrors:
    def test_unknown_group_raises(self, view):
        with pytest.raises(WorkflowError):
            focus_for_groups(view, ["branches", "nope"])

    def test_duplicate_group_names_expand_once(self, view):
        assert focus_for_groups(view, ["branches", "branches"]) == frozenset(
            {"A", "B"}
        )


class TestRollupEquivalence:
    """Rolling up == asking per processor, then grouping the answers.

    The server's ``view=`` parameter relies on this: expanding a view
    into its focus set and rolling the result up must give exactly the
    union of the per-processor answers, relabeled by group.  The lineage
    engine guarantees the focus-set answer is the union of per-processor
    answers, so the rollup may neither drop, invent, nor re-route a
    binding.
    """

    def _bindings(self, focus):
        flow = build_diamond_workflow()
        captured = capture_run(flow, {"size": 3})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, flow)
            query = LineageQuery.create("wf", "out", [1, 2], focus)
            return engine.lineage(captured.run_id, query).bindings

    def test_rollup_equals_grouped_per_processor_answers(self, view):
        combined = self._bindings(focus_for_groups(view, ["branches"]))
        summary = group_summary(rollup(combined, view))

        per_processor = {}
        for processor in sorted(focus_for_groups(view, ["branches"])):
            for binding in self._bindings([processor]):
                group = view.group_of(binding.node) or binding.node
                per_processor.setdefault(group, set()).add(binding.key())

        assert set(summary) == set(per_processor)
        for group, bindings in summary.items():
            assert {b.key() for b in bindings} == per_processor[group]

    def test_rollup_partitions_the_answer(self, view):
        """Every input binding lands in exactly one group, none appear."""
        combined = self._bindings(["A", "B", "GEN", "F"])
        summary = group_summary(rollup(combined, view))
        rolled_keys = [
            binding.key()
            for bindings in summary.values()
            for binding in bindings
        ]
        assert sorted(rolled_keys) == sorted(
            {binding.key() for binding in combined}
        )
        for group, bindings in summary.items():
            for binding in bindings:
                assert (view.group_of(binding.node) or binding.node) == group

    def test_rollup_of_empty_answer_is_empty(self, view):
        assert rollup([], view) == []
        assert group_summary(rollup([], view)) == {}
