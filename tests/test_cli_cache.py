"""CLI surface of the lineage caches: query --repeat/--no-cache and
the cache-stats command (sidecar-backed, zero store access)."""

from __future__ import annotations

import re

import pytest

from repro.cli import main
from repro.obs.export import load_persisted_counters

QUERY_ARGS = [
    "--db", None, "--workload", "gk",
    "--node", "genes2kegg", "--port", "paths_per_gene",
    "--index", "0", "--focus", "get_pathways_by_genes",
]


@pytest.fixture
def gk_db(tmp_path):
    db = str(tmp_path / "gk.db")
    assert main(["run", "--workload", "gk", "--db", db]) == 0
    return db


def _query_args(db, *extra):
    args = list(QUERY_ARGS)
    args[1] = db
    return ["query", *args, *extra]


def iteration_lines(out):
    return re.findall(r"iteration (\d+): [\d.]+ ms, (\d+) store queries", out)


class TestRepeat:
    def test_warm_repeats_have_zero_store_queries(self, gk_db, capsys):
        capsys.readouterr()
        assert main(_query_args(gk_db, "--repeat", "3")) == 0
        out = capsys.readouterr().out
        lines = iteration_lines(out)
        assert [n for n, _ in lines] == ["1", "2", "3"]
        cold_queries = int(lines[0][1])
        assert cold_queries > 0
        assert [int(q) for _, q in lines[1:]] == [0, 0]
        assert "trace cache:" in out
        match = re.search(r"trace cache: (\d+) hits, (\d+) misses", out)
        assert match is not None
        assert int(match.group(1)) > 0

    def test_no_cache_repeats_keep_reading(self, gk_db, capsys):
        capsys.readouterr()
        assert main(_query_args(gk_db, "--no-cache", "--repeat", "2")) == 0
        out = capsys.readouterr().out
        lines = iteration_lines(out)
        assert len(lines) == 2
        # Every iteration pays the same store traffic without the cache.
        assert int(lines[0][1]) == int(lines[1][1]) > 0
        assert "trace cache:" not in out

    def test_single_shot_prints_no_iteration_lines(self, gk_db, capsys):
        capsys.readouterr()
        assert main(_query_args(gk_db)) == 0
        out = capsys.readouterr().out
        assert iteration_lines(out) == []
        assert "trace cache:" in out

    def test_cached_and_uncached_answers_match(self, gk_db, capsys):
        def bindings(out):
            return sorted(
                line.strip() for line in out.splitlines()
                if line.startswith("  <")
            )

        capsys.readouterr()
        assert main(_query_args(gk_db, "--repeat", "2")) == 0
        cached = bindings(capsys.readouterr().out)
        assert main(_query_args(gk_db, "--no-cache")) == 0
        uncached = bindings(capsys.readouterr().out)
        assert cached == uncached
        assert cached  # the gk query has lineage to show


class TestCacheStats:
    def test_no_sidecar_reports_defaults_only(self, gk_db, capsys):
        capsys.readouterr()
        assert main(["cache-stats", "--db", gk_db]) == 0
        out = capsys.readouterr().out
        assert "default cache configuration" in out
        assert "result cache" in out and "trace cache" in out
        assert "no persisted cache counters" in out

    def test_profiled_query_feeds_cache_stats(self, gk_db, capsys):
        assert main(["--profile", *_query_args(gk_db, "--repeat", "2")]) == 0
        doc = load_persisted_counters(gk_db)
        assert doc["counters"]["cache.trace_hits"] > 0
        capsys.readouterr()
        assert main(["cache-stats", "--db", gk_db]) == 0
        out = capsys.readouterr().out
        assert "persisted cache counters (1 profiled invocations):" in out
        assert "cache.trace_hits" in out
        assert "cache.trace_misses" in out
        # Non-cache counters stay out of this report.
        assert "store.reads" not in out
