"""Tests for store maintenance (repro.provenance.maintenance)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.maintenance import (
    integrity_check,
    prune_runs,
    run_inventory,
    vacuum,
)
from repro.provenance.store import TraceStore

from tests.conftest import build_diamond_workflow


def populate(store, runs=3, size=2):
    flow = build_diamond_workflow()
    run_ids = []
    for _ in range(runs):
        captured = capture_run(flow, {"size": size})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return run_ids


class TestPrune:
    def test_keeps_latest(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=5)
            deleted = prune_runs(store, keep_latest=2)
            assert deleted == run_ids[:3]
            assert store.run_ids() == run_ids[3:]

    def test_prune_everything(self):
        with TraceStore() as store:
            populate(store, runs=2)
            prune_runs(store, keep_latest=0)
            assert store.run_ids() == []
            assert store.record_count() == 0

    def test_prune_noop_when_under_limit(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=2)
            assert prune_runs(store, keep_latest=5) == []
            assert store.run_ids() == run_ids

    def test_prune_per_workflow(self):
        from repro.testbed.generator import chain_product_workflow
        from repro.testbed.runs import populate_store

        with TraceStore() as store:
            diamond_ids = populate(store, runs=2)
            synth_ids = populate_store(
                store, chain_product_workflow(2), {"ListSize": 2}, runs=2
            )
            prune_runs(store, keep_latest=0, workflow="wf")
            assert store.run_ids() == synth_ids
            assert diamond_ids[0] not in store.run_ids()

    def test_negative_limit_rejected(self):
        with TraceStore() as store:
            with pytest.raises(ValueError):
                prune_runs(store, keep_latest=-1)


class TestIntegrity:
    def test_healthy_store(self):
        with TraceStore() as store:
            populate(store)
            report = integrity_check(store)
            assert report.is_healthy
            assert report.indexes_present
            assert report.empty_runs == []
            assert report.malformed_indices == 0

    def test_detects_empty_run(self):
        with TraceStore() as store:
            store._conn.execute(
                "INSERT INTO runs (run_id, workflow) VALUES ('hollow', 'wf')"
            )
            store._conn.commit()
            report = integrity_check(store)
            assert report.empty_runs == ["hollow"]
            assert not report.is_healthy

    def test_detects_missing_indexes(self):
        with TraceStore() as store:
            populate(store, runs=1)
            store.drop_indexes()
            report = integrity_check(store)
            assert not report.indexes_present
            assert any("indexes" in issue for issue in report.issues)
            store.create_indexes()
            assert integrity_check(store).indexes_present

    def test_detects_malformed_index_encoding(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=1)
            store._conn.execute(
                "UPDATE xform_io SET idx = '1..2' WHERE rowid = "
                "(SELECT rowid FROM xform_io LIMIT 1)"
            )
            store._conn.commit()
            report = integrity_check(store)
            assert report.malformed_indices >= 1
            assert not report.is_healthy
            del run_ids

    def test_detects_orphan_io_rows(self):
        with TraceStore() as store:
            populate(store, runs=1)
            store._conn.execute("PRAGMA foreign_keys = OFF")
            store._conn.execute(
                "UPDATE xform_io SET event_id = 999999 WHERE rowid = "
                "(SELECT rowid FROM xform_io LIMIT 1)"
            )
            store._conn.commit()
            report = integrity_check(store)
            assert report.orphan_io_rows == 1
            assert not report.is_healthy


class TestInventoryAndVacuum:
    def test_inventory(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=2)
            inventory = run_inventory(store)
            assert list(inventory) == run_ids
            for entry in inventory.values():
                assert entry["workflow"] == "wf"
                assert entry["records"] > 0

    def test_vacuum_after_prune(self, tmp_path):
        path = str(tmp_path / "traces.db")
        with TraceStore(path) as store:
            populate(store, runs=4, size=5)
            prune_runs(store, keep_latest=1)
            vacuum(store)
            assert len(store.run_ids()) == 1
            assert integrity_check(store).is_healthy
