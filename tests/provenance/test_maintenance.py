"""Tests for store maintenance (repro.provenance.maintenance)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.maintenance import (
    gc_value_pool,
    integrity_check,
    prune_runs,
    run_inventory,
    vacuum,
)
from repro.provenance.store import TraceStore

from tests.conftest import build_diamond_workflow


def populate(store, runs=3, size=2):
    flow = build_diamond_workflow()
    run_ids = []
    for _ in range(runs):
        captured = capture_run(flow, {"size": size})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return run_ids


class TestPrune:
    def test_keeps_latest(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=5)
            deleted = prune_runs(store, keep_latest=2)
            assert deleted == run_ids[:3]
            assert store.run_ids() == run_ids[3:]

    def test_prune_everything(self):
        with TraceStore() as store:
            populate(store, runs=2)
            prune_runs(store, keep_latest=0)
            assert store.run_ids() == []
            assert store.record_count() == 0

    def test_prune_noop_when_under_limit(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=2)
            assert prune_runs(store, keep_latest=5) == []
            assert store.run_ids() == run_ids

    def test_prune_per_workflow(self):
        from repro.testbed.generator import chain_product_workflow
        from repro.testbed.runs import populate_store

        with TraceStore() as store:
            diamond_ids = populate(store, runs=2)
            synth_ids = populate_store(
                store, chain_product_workflow(2), {"ListSize": 2}, runs=2
            )
            prune_runs(store, keep_latest=0, workflow="wf")
            assert store.run_ids() == synth_ids
            assert diamond_ids[0] not in store.run_ids()

    def test_negative_limit_rejected(self):
        with TraceStore() as store:
            with pytest.raises(ValueError):
                prune_runs(store, keep_latest=-1)


class TestIntegrity:
    def test_healthy_store(self):
        with TraceStore() as store:
            populate(store)
            report = integrity_check(store)
            assert report.is_healthy
            assert report.indexes_present
            assert report.empty_runs == []
            assert report.malformed_indices == 0

    def test_detects_empty_run(self):
        with TraceStore() as store:
            store._conn.execute(
                "INSERT INTO runs (run_id, workflow) VALUES ('hollow', 'wf')"
            )
            store._conn.commit()
            report = integrity_check(store)
            assert report.empty_runs == ["hollow"]
            assert not report.is_healthy

    def test_detects_missing_indexes(self):
        with TraceStore() as store:
            populate(store, runs=1)
            store.drop_indexes()
            report = integrity_check(store)
            assert not report.indexes_present
            assert any("indexes" in issue for issue in report.issues)
            store.create_indexes()
            assert integrity_check(store).indexes_present

    def test_detects_malformed_index_encoding(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=1)
            store._conn.execute(
                "UPDATE xform_io SET idx = '1..2' WHERE rowid = "
                "(SELECT rowid FROM xform_io LIMIT 1)"
            )
            store._conn.commit()
            report = integrity_check(store)
            assert report.malformed_indices >= 1
            assert not report.is_healthy
            del run_ids

    def test_detects_orphan_io_rows(self):
        with TraceStore() as store:
            populate(store, runs=1)
            store._conn.execute("PRAGMA foreign_keys = OFF")
            store._conn.execute(
                "UPDATE xform_io SET event_id = 999999 WHERE rowid = "
                "(SELECT rowid FROM xform_io LIMIT 1)"
            )
            store._conn.commit()
            report = integrity_check(store)
            assert report.orphan_io_rows == 1
            assert not report.is_healthy


class TestInventoryAndVacuum:
    def test_inventory(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=2)
            inventory = run_inventory(store)
            assert list(inventory) == run_ids
            for entry in inventory.values():
                assert entry["workflow"] == "wf"
                assert entry["records"] > 0

    def test_vacuum_after_prune(self, tmp_path):
        path = str(tmp_path / "traces.db")
        with TraceStore(path) as store:
            populate(store, runs=4, size=5)
            prune_runs(store, keep_latest=1)
            vacuum(store)
            assert len(store.run_ids()) == 1
            assert integrity_check(store).is_healthy


class TestMaintenanceGenerations:
    """Every maintenance operation that touches stored data must bump
    generations — otherwise the lineage caches (repro.cache) could keep
    serving answers computed over the pre-maintenance database."""

    def test_prune_bumps_each_deleted_run_and_membership(self):
        with TraceStore() as store:
            run_ids = populate(store, runs=3)
            membership_before = store.membership_generation
            deleted = prune_runs(store, keep_latest=1)
            assert deleted == run_ids[:2]
            for run_id in deleted:
                assert store.generation(run_id) == 2  # insert + delete
            assert store.generation(run_ids[2]) == 1  # survivor untouched
            assert store.membership_generation == membership_before + 2

    def test_vacuum_bumps_global(self, tmp_path):
        with TraceStore(str(tmp_path / "t.db")) as store:
            populate(store, runs=1)
            before = store.global_generation
            vacuum(store)
            assert store.global_generation == before + 1

    def test_gc_value_pool_bumps_global(self):
        with TraceStore(intern_values=True) as store:
            run_ids = populate(store, runs=2)
            store.delete_run(run_ids[0])
            before = store.global_generation
            gc_value_pool(store)
            assert store.global_generation == before + 1

    def test_prune_evicts_exactly_affected_service_entries(self):
        """End-to-end precision: after pruning run A, cached results whose
        scope contains A are gone; a scope of survivors stays warm."""
        from repro.query.base import LineageQuery
        from repro.service import ProvenanceService

        query = LineageQuery.create("wf", "out", [1, 1],
                                    focus=["GEN", "A", "B"])
        service = ProvenanceService()
        service.register_workflow(build_diamond_workflow())
        run_ids = [service.run("wf", {"size": 2}) for _ in range(3)]
        survivors = run_ids[1:]
        service.lineage(query, runs=run_ids)     # scope contains the victim
        service.lineage(query, runs=survivors)   # scope of survivors only
        assert service.cache_stats()["result"]["entries"] == 2

        prune_runs(service.store, keep_latest=2)

        assert service.cache_stats()["result"]["entries"] == 1
        warm = service.lineage(query, runs=survivors)
        assert warm.from_cache is True
        fresh = service.lineage(query, runs=survivors, cache=False)
        assert warm.binding_keys_by_run() == fresh.binding_keys_by_run()
        service.close()

    def test_vacuum_clears_service_caches_conservatively(self, tmp_path):
        from repro.query.base import LineageQuery
        from repro.service import ProvenanceService

        query = LineageQuery.create("wf", "out", [1, 1],
                                    focus=["GEN", "A", "B"])
        service = ProvenanceService(str(tmp_path / "traces.db"))
        service.register_workflow(build_diamond_workflow())
        service.run("wf", {"size": 2})
        service.lineage(query)
        assert service.cache_stats()["result"]["entries"] == 1
        vacuum(service.store)
        assert service.cache_stats()["result"]["entries"] == 0
        assert service.cache_stats()["trace"]["entries"] == 0
        after = service.lineage(query)
        assert after.from_cache is False
        service.close()
