"""Tests for the relational trace store (repro.provenance.store)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import StoreStats, TraceStore, _prefixes
from repro.values.index import Index

from tests.conftest import build_diamond_workflow


@pytest.fixture
def captured():
    return capture_run(build_diamond_workflow(), {"size": 2})


@pytest.fixture
def store(captured):
    with TraceStore() as trace_store:
        trace_store.insert_trace(captured.trace)
        yield trace_store


class TestPrefixes:
    def test_empty(self):
        assert _prefixes("") == [""]

    def test_path(self):
        assert _prefixes("1.2.3") == ["", "1", "1.2", "1.2.3"]


class TestIngestion:
    def test_record_count_matches_trace(self, store, captured):
        assert store.record_count(captured.run_id) == captured.trace.record_count

    def test_statistics(self, store, captured):
        stats = store.statistics()
        assert stats["runs"] == 1
        assert stats["xform_events"] == len(captured.trace.xforms)
        assert stats["xfer_rows"] == len(captured.trace.xfers)
        assert stats["records"] == captured.trace.record_count

    def test_run_ids(self, store, captured):
        assert store.run_ids() == [captured.run_id]
        assert store.run_ids(workflow="wf") == [captured.run_id]
        assert store.run_ids(workflow="other") == []

    def test_duplicate_run_id_rejected(self, store, captured):
        import sqlite3

        with pytest.raises(sqlite3.IntegrityError):
            store.insert_trace(captured.trace)

    def test_failed_insert_rolls_back(self, store, captured):
        import sqlite3

        before = store.statistics()
        with pytest.raises(sqlite3.IntegrityError):
            store.insert_trace(captured.trace)  # duplicate run_id
        assert store.statistics() == before

    def test_multi_run_accumulation(self, captured):
        with TraceStore() as trace_store:
            trace_store.insert_trace(captured.trace)
            second = capture_run(build_diamond_workflow(), {"size": 2})
            trace_store.insert_trace(second.trace)
            assert len(trace_store.run_ids()) == 2
            assert (
                trace_store.record_count()
                == captured.trace.record_count + second.trace.record_count
            )

    def test_delete_run_cascades(self, store, captured):
        store.delete_run(captured.run_id)
        assert store.run_ids() == []
        assert store.record_count() == 0

    def test_file_backed_store_roundtrip(self, captured, tmp_path):
        path = str(tmp_path / "traces.db")
        with TraceStore(path) as trace_store:
            trace_store.insert_trace(captured.trace)
        with TraceStore(path) as reopened:
            assert reopened.run_ids() == [captured.run_id]
            assert reopened.record_count() == captured.trace.record_count


class TestXformLookups:
    def test_exact_output_match(self, store, captured):
        matches = store.find_xform_by_output(
            captured.run_id, "F", "y", Index(1, 0)
        )
        assert len(matches) == 1
        assert matches[0].output_index == Index(1, 0)

    def test_finer_rows_match_partial_query(self, store, captured):
        matches = store.find_xform_by_output(captured.run_id, "F", "y", Index(1))
        assert sorted(m.output_index for m in matches) == [Index(1, 0), Index(1, 1)]

    def test_empty_query_matches_all(self, store, captured):
        matches = store.find_xform_by_output(captured.run_id, "F", "y", Index())
        assert len(matches) == 4

    def test_coarser_row_matches_deep_query(self, store, captured):
        # GEN produced its whole list in one instance (index []).
        matches = store.find_xform_by_output(
            captured.run_id, "GEN", "list", Index(1)
        )
        assert len(matches) == 1
        assert matches[0].output_index == Index()

    def test_no_match_for_unknown_port(self, store, captured):
        assert store.find_xform_by_output(captured.run_id, "F", "zz", Index()) == []

    def test_wrong_run_id_is_isolated(self, store):
        assert store.find_xform_by_output("ghost-run", "F", "y", Index()) == []

    def test_xform_inputs(self, store, captured):
        matches = store.find_xform_by_output(
            captured.run_id, "F", "y", Index(0, 1)
        )
        inputs = store.xform_inputs([m.event_id for m in matches])
        assert {(b.port, b.index) for b in inputs} == {
            ("a", Index(0)),
            ("b", Index(1)),
        }
        assert {b.value for b in inputs} == {"item-0-a", "item-1-b"}

    def test_xform_inputs_empty_ids(self, store):
        assert store.xform_inputs([]) == []

    def test_xform_inputs_deduplicates(self, store, captured):
        matches = store.find_xform_by_output(captured.run_id, "F", "y", Index(0))
        inputs = store.xform_inputs([m.event_id for m in matches])
        # a[0] appears in both events but must be reported once.
        assert sorted(b.key() for b in inputs) == [
            ("F", "a", "0"), ("F", "b", "0"), ("F", "b", "1"),
        ]

    def test_find_xform_inputs_matching(self, store, captured):
        bindings = store.find_xform_inputs_matching(
            captured.run_id, "A", "x", Index(1)
        )
        assert [b.key() for b in bindings] == [("A", "x", "1")]
        assert bindings[0].value == "item-1"

    def test_find_xform_inputs_matching_empty_fragment(self, store, captured):
        bindings = store.find_xform_inputs_matching(
            captured.run_id, "A", "x", Index()
        )
        assert sorted(b.index for b in bindings) == [Index(0), Index(1)]


class TestXferLookups:
    def test_exact_match_continues_with_query_index(self, store, captured):
        results = store.find_xfer_into(captured.run_id, "A", "x", Index(1))
        assert len(results) == 1
        source, continue_index = results[0]
        assert source.key() == ("GEN", "list", "1")
        assert continue_index == Index(1)

    def test_coarser_row_keeps_finer_query_index(self, store, captured):
        # The workflow-output transfer is recorded whole ([]); a deep query
        # index must survive the hop.
        results = store.find_xfer_into(captured.run_id, "wf", "out", Index(1, 0))
        assert len(results) == 1
        source, continue_index = results[0]
        assert source.node == "F" and source.port == "y"
        assert continue_index == Index(1, 0)

    def test_finer_rows_expand(self, store, captured):
        results = store.find_xfer_into(captured.run_id, "A", "x", Index())
        continue_indices = sorted(idx for _, idx in results)
        assert continue_indices == [Index(0), Index(1)]

    def test_stats_counters(self, store, captured):
        stats = StoreStats()
        store.find_xfer_into(captured.run_id, "A", "x", Index(), stats)
        store.find_xform_by_output(captured.run_id, "F", "y", Index(), stats)
        assert stats.queries == 2
        assert stats.rows >= 6
        stats.reset()
        assert stats.queries == 0 and stats.rows == 0

    def test_has_binding(self, store, captured):
        assert store.has_binding(captured.run_id, "A", "x")
        assert store.has_binding(captured.run_id, "wf", "out")
        assert not store.has_binding(captured.run_id, "A", "zz")
