"""Tests for PROV/dot export (repro.provenance.export)."""

import json

from repro.provenance.capture import capture_run
from repro.provenance.export import (
    provenance_to_dot,
    save_prov_document,
    to_prov_document,
)

from tests.conftest import build_diamond_workflow


def captured_diamond(size=2):
    return capture_run(build_diamond_workflow(), {"size": size})


class TestProvDocument:
    def test_activities_match_instances(self):
        captured = captured_diamond()
        document = to_prov_document(captured.trace)
        assert len(document["activity"]) == len(captured.trace.xforms)

    def test_used_and_generated_counts(self):
        captured = captured_diamond()
        document = to_prov_document(captured.trace)
        expected_used = sum(len(e.inputs) for e in captured.trace.xforms)
        expected_generated = sum(len(e.outputs) for e in captured.trace.xforms)
        assert len(document["used"]) == expected_used
        assert len(document["wasGeneratedBy"]) == expected_generated

    def test_derivations_match_xfers(self):
        captured = captured_diamond()
        document = to_prov_document(captured.trace)
        assert len(document["wasDerivedFrom"]) == len(captured.trace.xfers)

    def test_entities_are_deduplicated_bindings(self):
        captured = captured_diamond()
        document = to_prov_document(captured.trace)
        keys = {b.key() for b in captured.trace.bindings()}
        assert len(document["entity"]) == len(keys)

    def test_relations_reference_existing_records(self):
        captured = captured_diamond()
        document = to_prov_document(captured.trace)
        for relation in document["used"].values():
            assert relation["prov:activity"] in document["activity"]
            assert relation["prov:entity"] in document["entity"]
        for relation in document["wasGeneratedBy"].values():
            assert relation["prov:activity"] in document["activity"]
            assert relation["prov:entity"] in document["entity"]
        for relation in document["wasDerivedFrom"].values():
            assert relation["prov:generatedEntity"] in document["entity"]
            assert relation["prov:usedEntity"] in document["entity"]

    def test_values_optional(self):
        captured = captured_diamond()
        with_values = to_prov_document(captured.trace, include_values=True)
        without = to_prov_document(captured.trace, include_values=False)
        assert any(
            "repro:value" in e for e in with_values["entity"].values()
        )
        assert not any(
            "repro:value" in e for e in without["entity"].values()
        )

    def test_run_metadata(self):
        captured = captured_diamond()
        document = to_prov_document(captured.trace)
        assert document["repro:run"] == captured.run_id
        assert document["repro:workflow"] == "wf"

    def test_document_is_json_serializable(self, tmp_path):
        captured = captured_diamond()
        path = str(tmp_path / "trace.prov.json")
        save_prov_document(captured.trace, path)
        with open(path, encoding="utf-8") as handle:
            restored = json.load(handle)
        assert restored["repro:run"] == captured.run_id


class TestDotExport:
    def test_mentions_every_binding(self):
        captured = captured_diamond(size=1)
        dot = provenance_to_dot(captured.trace)
        for binding in captured.trace.bindings():
            assert f"{binding.node}:{binding.port}" in dot

    def test_xfer_edges_dashed(self):
        captured = captured_diamond(size=1)
        dot = provenance_to_dot(captured.trace)
        assert "style=dashed" in dot

    def test_long_values_truncated(self):
        captured = captured_diamond(size=1)
        dot = provenance_to_dot(captured.trace, max_label=10)
        assert "..." in dot

    def test_valid_digraph(self):
        captured = captured_diamond(size=1)
        dot = provenance_to_dot(captured.trace)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
