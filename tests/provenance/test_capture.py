"""Tests for one-call capture (repro.provenance.capture)."""

from repro.engine.executor import WorkflowRunner
from repro.provenance.capture import capture_run

from tests.conftest import build_diamond_workflow


class TestCaptureRun:
    def test_returns_outputs_and_trace(self):
        captured = capture_run(build_diamond_workflow(), {"size": 1})
        assert captured.outputs["out"] == [["item-0-a+item-0-b"]]
        assert captured.trace.xforms
        assert captured.trace.workflow == "wf"

    def test_run_id_propagates(self):
        captured = capture_run(
            build_diamond_workflow(), {"size": 1}, run_id="custom-run"
        )
        assert captured.run_id == "custom-run"
        assert captured.trace.run_id == "custom-run"

    def test_repeated_runs_are_deterministic(self):
        flow = build_diamond_workflow()
        runner = WorkflowRunner()
        first = capture_run(flow, {"size": 3}, runner=runner)
        second = capture_run(flow, {"size": 3}, runner=runner)
        assert first.outputs == second.outputs
        assert [str(e) for e in first.trace.xforms] == [
            str(e) for e in second.trace.xforms
        ]
        assert [str(e) for e in first.trace.xfers] == [
            str(e) for e in second.trace.xfers
        ]

    def test_shared_runner_reuses_analysis(self):
        flow = build_diamond_workflow()
        runner = WorkflowRunner()
        first = capture_run(flow, {"size": 1}, runner=runner)
        second = capture_run(flow, {"size": 2}, runner=runner)
        assert first.result.analysis is second.result.analysis

    def test_custom_registry(self):
        from repro.engine.processors import default_registry

        registry = default_registry().extended()
        registry.register("tag", lambda inputs, config: {"y": "override"})
        captured = capture_run(
            build_diamond_workflow(), {"size": 1}, registry=registry
        )
        assert captured.outputs["out"] == [["override+override"]]
