"""Robustness tests for the trace store: payload edge cases, concurrent
readers, deep indexes."""

import threading

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.provenance.trace import Trace
from repro.values.index import Index
from repro.workflow.model import PortRef

from tests.conftest import build_diamond_workflow


def make_trace(run_id: str, value) -> Trace:
    """A single-event trace with an arbitrary payload."""
    trace = Trace(run_id=run_id, workflow="edge")
    trace.xforms.append(
        XformEvent(
            "P",
            inputs=(Binding(PortRef("P", "x"), Index(0), value=value),),
            outputs=(Binding(PortRef("P", "y"), Index(0), value=value),),
        )
    )
    return trace


class TestPayloadEdgeCases:
    def roundtrip(self, value):
        with TraceStore() as store:
            store.insert_trace(make_trace("edge-run", value))
            bindings = store.find_xform_inputs_matching(
                "edge-run", "P", "x", Index(0)
            )
            assert len(bindings) == 1
            return bindings[0].value

    def test_unicode(self):
        assert self.roundtrip("päthwαy → 経路") == "päthwαy → 経路"

    def test_none_payload(self):
        assert self.roundtrip(None) is None

    def test_numbers(self):
        assert self.roundtrip(3.25) == 3.25
        assert self.roundtrip(0) == 0

    def test_booleans(self):
        assert self.roundtrip(True) is True

    def test_deeply_nested_list(self):
        value = [[[["deep"]]]]
        assert self.roundtrip(value) == value

    def test_large_list(self):
        value = [f"item-{i}" for i in range(5000)]
        assert self.roundtrip(value) == value

    def test_strings_with_sql_metacharacters(self):
        tricky = "Robert'); DROP TABLE xform_io;-- %_."
        assert self.roundtrip(tricky) == tricky

    def test_non_json_object_falls_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "Opaque<42>"

        assert self.roundtrip(Opaque()) == "Opaque<42>"


class TestDeepIndexes:
    def test_long_index_paths(self):
        trace = Trace(run_id="deep-run", workflow="edge")
        deep = Index.of(range(12))
        trace.xforms.append(
            XformEvent(
                "P",
                inputs=(Binding(PortRef("P", "x"), deep, value="v"),),
                outputs=(Binding(PortRef("P", "y"), deep, value="v"),),
            )
        )
        with TraceStore() as store:
            store.insert_trace(trace)
            # Exact, coarser, and finer lookups all resolve.
            assert store.find_xform_by_output("deep-run", "P", "y", deep)
            assert store.find_xform_by_output(
                "deep-run", "P", "y", deep.head(3)
            )
            assert store.find_xform_by_output(
                "deep-run", "P", "y", deep + Index(9)
            )

    def test_large_position_values(self):
        big = Index(1_000_000, 2_000_000)
        trace = Trace(run_id="big-run", workflow="edge")
        trace.xfers.append(
            XferEvent(
                Binding(PortRef("P", "y"), big, value="v"),
                Binding(PortRef("Q", "x"), big, value="v"),
            )
        )
        with TraceStore() as store:
            store.insert_trace(trace)
            results = store.find_xfer_into("big-run", "Q", "x", big)
            assert len(results) == 1


class TestConcurrentReaders:
    def test_parallel_reads_on_shared_file(self, tmp_path):
        path = str(tmp_path / "shared.db")
        captured = capture_run(build_diamond_workflow(), {"size": 3})
        with TraceStore(path) as writer:
            writer.insert_trace(captured.trace)

        errors = []

        def read_many():
            try:
                with TraceStore(path) as reader:
                    for _ in range(50):
                        bindings = reader.find_xform_inputs_matching(
                            captured.run_id, "A", "x", Index(1)
                        )
                        assert len(bindings) == 1
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=read_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_reader_sees_committed_writes_only(self, tmp_path):
        path = str(tmp_path / "wal.db")
        flow = build_diamond_workflow()
        with TraceStore(path) as writer, TraceStore(path) as reader:
            first = capture_run(flow, {"size": 2})
            writer.insert_trace(first.trace)
            assert reader.run_ids() == [first.run_id]
            second = capture_run(flow, {"size": 2})
            writer.insert_trace(second.trace)
            assert set(reader.run_ids()) == {first.run_id, second.run_id}
