"""Tests for value interning (normalized payload storage)."""

import pytest

from repro.engine.executor import run_workflow
from repro.provenance.capture import capture_run
from repro.provenance.maintenance import gc_value_pool, integrity_check
from repro.provenance.store import TraceStore
from repro.provenance.streaming import StreamingTraceWriter
from repro.query.base import LineageQuery
from repro.query.naive import NaiveEngine
from repro.query.indexproj import IndexProjEngine
from repro.testbed.generator import chain_product_workflow, focused_query

from tests.conftest import build_diamond_workflow


@pytest.fixture
def captured():
    return capture_run(build_diamond_workflow(), {"size": 3})


class TestInterning:
    def test_pool_populated_only_when_enabled(self, captured):
        with TraceStore(intern_values=False) as plain:
            plain.insert_trace(captured.trace)
            assert plain.statistics()["pooled_values"] == 0
        with TraceStore(intern_values=True) as interned:
            interned.insert_trace(captured.trace)
            stats = interned.statistics()
            assert 0 < stats["pooled_values"] < stats["records"]

    def test_identical_values_shared(self, captured):
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            # GEN's list is transferred along two arcs and read whole; the
            # payloads must nevertheless exist once in the pool.
            rows = store._conn.execute(
                "SELECT COUNT(*) FROM value_pool WHERE value_json = ?",
                ('["item-0","item-1","item-2"]',),
            ).fetchone()
            assert rows[0] == 1

    def test_queries_return_identical_answers(self, captured):
        flow = build_diamond_workflow()
        query = LineageQuery.create("F", "y", [1, 2], ["A", "B"])
        answers = {}
        for interning in (False, True):
            with TraceStore(intern_values=interning) as store:
                store.insert_trace(captured.trace)
                naive = NaiveEngine(store).lineage(captured.run_id, query)
                indexproj = IndexProjEngine(store, flow).lineage(
                    captured.run_id, query
                )
                assert naive.binding_keys() == indexproj.binding_keys()
                answers[interning] = {
                    b.key(): b.value for b in naive.bindings
                }
        assert answers[False] == answers[True]

    def test_load_trace_roundtrip_with_interning(self, captured):
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            restored = store.load_trace(captured.run_id)
            originals = {b.key(): b.value for b in captured.trace.bindings()}
            for binding in restored.bindings():
                assert binding.value == originals[binding.key()]

    def test_interned_store_is_smaller_for_whole_list_consumers(self, tmp_path):
        """The paper's P:X2 pattern — a large list consumed whole by every
        instance of an iterating processor — duplicates the full payload
        once per instance inline; the pool stores it once."""
        from repro.workflow.builder import DataflowBuilder

        flow = (
            DataflowBuilder("wf")
            .input("keys", "list(string)")
            .input("biglist", "list(string)")
            .output("out", "list(integer)")
            .processor(
                "P",
                inputs=[("k", "string"), ("whole", "list(string)")],
                outputs=[("y", "integer")],
                operation="count",
                config={"out": "y"},
                # count takes one input; merge via custom op below
            )
            .arcs(("wf:keys", "P:k"), ("wf:biglist", "P:whole"),
                  ("P:y", "wf:out"))
            .build()
        )
        from repro.engine.processors import default_registry

        registry = default_registry().extended()
        registry.register(
            "count", lambda inputs, config: {"y": len(inputs["whole"])}
        )
        inputs = {
            "keys": [f"k{i}" for i in range(60)],
            "biglist": [f"payload-item-{i:06d}" for i in range(300)],
        }
        captured = capture_run(flow, inputs, registry=registry)
        sizes = {}
        for interning in (False, True):
            path = str(tmp_path / f"t_{interning}.db")
            with TraceStore(path, intern_values=interning) as store:
                store.insert_trace(captured.trace)
                store._conn.execute("VACUUM")
            sizes[interning] = (tmp_path / f"t_{interning}.db").stat().st_size
        assert sizes[True] < 0.25 * sizes[False]

    def test_streaming_writer_honours_interning(self, captured):
        flow = build_diamond_workflow()
        with TraceStore(intern_values=True) as store:
            with StreamingTraceWriter(store, workflow="wf") as writer:
                run_workflow(flow, {"size": 3}, listener=writer)
            assert store.statistics()["pooled_values"] > 0
            result = NaiveEngine(store).lineage(
                writer.run_id, LineageQuery.create("F", "y", [0, 1], ["A"])
            )
            assert result.bindings[0].value == "item-0"

    def test_interning_across_runs_shares_pool(self, captured):
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            after_one = store.statistics()["pooled_values"]
            second = capture_run(build_diamond_workflow(), {"size": 3})
            store.insert_trace(second.trace)
            after_two = store.statistics()["pooled_values"]
            # Identical runs contribute no new distinct payloads.
            assert after_two == after_one

    def test_gc_value_pool(self, captured):
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            assert gc_value_pool(store) == 0  # everything referenced
            store.delete_run(captured.run_id)
            freed = gc_value_pool(store)
            assert freed > 0
            assert store.statistics()["pooled_values"] == 0

    def test_integrity_check_healthy_with_interning(self, captured):
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            assert integrity_check(store).is_healthy

    def test_focused_query_on_interned_synthetic_store(self):
        flow = chain_product_workflow(10)
        captured = capture_run(flow, {"ListSize": 5})
        with TraceStore(intern_values=True) as store:
            store.insert_trace(captured.trace)
            result = IndexProjEngine(store, flow).lineage(
                captured.run_id, focused_query()
            )
            assert [b.key() for b in result.bindings] == [
                ("LISTGEN_1", "size", "")
            ]
            assert result.bindings[0].value == 5
