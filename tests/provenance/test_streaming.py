"""Tests for streaming capture (repro.provenance.streaming)."""

import pytest

from repro.engine.executor import run_workflow
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.provenance.streaming import StreamingTraceWriter
from repro.query.base import LineageQuery
from repro.query.naive import NaiveEngine

from tests.conftest import build_diamond_workflow


class TestStreamingWriter:
    def test_streamed_trace_equals_batch_insert(self):
        flow = build_diamond_workflow()
        batch = capture_run(flow, {"size": 3})
        with TraceStore() as batch_store, TraceStore() as stream_store:
            batch_store.insert_trace(batch.trace)
            with StreamingTraceWriter(
                stream_store, workflow="wf", batch_size=7
            ) as writer:
                run_workflow(flow, {"size": 3}, listener=writer)
            assert (
                stream_store.record_count(writer.run_id)
                == batch_store.record_count(batch.run_id)
            )
            stats_a = batch_store.statistics()
            stats_b = stream_store.statistics()
            assert stats_a == stats_b

    def test_streamed_trace_is_queryable(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            with StreamingTraceWriter(store, workflow="wf") as writer:
                run_workflow(flow, {"size": 2}, listener=writer)
            result = NaiveEngine(store).lineage(
                writer.run_id,
                LineageQuery.create("F", "y", [0, 1], ["A", "B"]),
            )
            assert sorted(b.key() for b in result.bindings) == [
                ("A", "x", "0"), ("B", "x", "1"),
            ]

    def test_commit_registers_run(self):
        with TraceStore() as store:
            with StreamingTraceWriter(store, run_id="stream-1") as writer:
                pass
            assert store.run_ids() == ["stream-1"]
            assert writer.run_id == "stream-1"

    def test_exception_rolls_back_everything(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            with pytest.raises(RuntimeError, match="boom"):
                with StreamingTraceWriter(store, workflow="wf") as writer:
                    run_workflow(flow, {"size": 2}, listener=writer)
                    raise RuntimeError("boom")
            assert store.run_ids() == []
            assert store.record_count() == 0

    def test_closed_writer_rejects_events(self):
        with TraceStore() as store:
            writer = StreamingTraceWriter(store)
            writer.commit()
            from repro.engine.events import Binding, XferEvent
            from repro.values.index import Index
            from repro.workflow.model import PortRef

            event = XferEvent(
                Binding(PortRef("P", "y"), Index()),
                Binding(PortRef("Q", "x"), Index()),
            )
            with pytest.raises(RuntimeError, match="closed"):
                writer.on_xfer(event)

    def test_invalid_batch_size_rejected(self):
        with TraceStore() as store:
            with pytest.raises(ValueError):
                StreamingTraceWriter(store, batch_size=0)

    def test_rollback_is_idempotent(self):
        with TraceStore() as store:
            writer = StreamingTraceWriter(store)
            writer.rollback()
            writer.rollback()
            assert store.run_ids() == []

    def test_small_batch_flushes_incrementally(self):
        flow = build_diamond_workflow()
        with TraceStore() as store:
            with StreamingTraceWriter(
                store, workflow="wf", batch_size=1
            ) as writer:
                run_workflow(flow, {"size": 2}, listener=writer)
                # With batch_size=1 every event is flushed immediately, so
                # pending buffers stay empty mid-run.
                assert not writer._io_rows and not writer._xfer_rows
            assert store.record_count(writer.run_id) > 0
