"""Set-based (batched) store lookups — differential and plan tests.

Every batched primitive must return, per key, exactly what its
single-key sibling returns — for any chunk size, for keys straddling
chunk boundaries, for empty/root indices, and for keys of deleted or
unknown runs.  On top of the row-level contract, the ``EXPLAIN QUERY
PLAN`` tests pin the performance claim itself: both branches of the
``VALUES``-join must be driven by the composite covering indexes, never
by a table scan.
"""

import math

import pytest

from repro.analysis.planlint import PlanGuard
from repro.provenance.capture import capture_run
from repro.provenance.store import (
    DEFAULT_BATCH_CHUNK,
    BatchConfig,
    StoreStats,
    TraceStore,
    batch_key_id,
)
from repro.values.index import Index

from tests.conftest import build_diamond_workflow


@pytest.fixture()
def populated():
    flow = build_diamond_workflow()
    store = TraceStore()
    run_ids = []
    for size in (3, 2, 3):
        captured = capture_run(flow, {"size": size})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    yield store, run_ids
    store.close()


def all_keys(store, run_ids, extra=()):
    rows = store._read(
        "SELECT DISTINCT run_id, processor, port, idx FROM xform_io", []
    )
    keys = [(r, n, p, Index.decode(i)) for r, n, p, i in rows]
    keys.sort(key=lambda k: (k[0], k[1], k[2], k[3].encode()))
    return keys + list(extra)


def binding_keys(bindings):
    return [(b.ref.node, b.ref.port, b.index.encode(), b.value) for b in bindings]


class TestBatchConfig:
    def test_of_coercions(self):
        assert BatchConfig.of(True) == BatchConfig()
        assert not BatchConfig.of(False).enabled
        assert not BatchConfig.of(None).enabled
        config = BatchConfig(chunk_size=7)
        assert BatchConfig.of(config) is config

    def test_rejects_bad_values(self):
        with pytest.raises(TypeError):
            BatchConfig.of("yes")
        with pytest.raises(ValueError):
            BatchConfig(chunk_size=0)


class TestDifferential:
    """Batched results == single-key results, key by key."""

    @pytest.mark.parametrize("chunk", [1, 2, 5, DEFAULT_BATCH_CHUNK, 500])
    def test_find_xform_inputs_matching_many(self, populated, chunk):
        store, run_ids = populated
        keys = all_keys(
            store,
            run_ids,
            extra=[
                (run_ids[0], "F", "y", Index.of(())),  # root index
                ("missing-run", "A", "x", Index.of((0,))),  # unknown run
            ],
        )
        stats = StoreStats()
        many = store.find_xform_inputs_matching_many(
            keys, stats=stats, chunk_size=chunk
        )
        assert set(many) == {batch_key_id(k) for k in keys}
        for key in keys:
            single = store.find_xform_inputs_matching(*key[:3], key[3])
            assert binding_keys(many[batch_key_id(key)]) == binding_keys(
                single
            ), key
        assert stats.batch_keys == len(keys)
        assert stats.batch_chunk_size == chunk
        # The bound-variable budget may split below chunk_size, never above.
        assert stats.batch_lookups >= math.ceil(len(keys) / chunk)

    @pytest.mark.parametrize("chunk", [1, 3, DEFAULT_BATCH_CHUNK])
    def test_find_xform_by_output_many(self, populated, chunk):
        store, run_ids = populated
        keys = all_keys(store, run_ids)
        many = store.find_xform_by_output_many(keys, chunk_size=chunk)
        for key in keys:
            single = store.find_xform_by_output(*key[:3], key[3])
            got = many[batch_key_id(key)]
            assert sorted(
                (m.event_id, m.output_index.encode()) for m in got
            ) == sorted(
                (m.event_id, m.output_index.encode()) for m in single
            ), key

    @pytest.mark.parametrize("chunk", [1, 3, DEFAULT_BATCH_CHUNK])
    def test_find_xfer_into_many(self, populated, chunk):
        store, run_ids = populated
        keys = all_keys(store, run_ids)
        many = store.find_xfer_into_many(keys, chunk_size=chunk)
        for key in keys:
            single = store.find_xfer_into(*key[:3], key[3])
            got = many[batch_key_id(key)]
            assert [
                (b.ref.node, b.ref.port, b.index.encode(), ci.encode())
                for b, ci in got
            ] == [
                (b.ref.node, b.ref.port, b.index.encode(), ci.encode())
                for b, ci in single
            ], key

    def test_xform_inputs_many(self, populated):
        store, run_ids = populated
        rows = store._read(
            "SELECT DISTINCT run_id, event_id FROM xform_io ORDER BY event_id",
            [],
        )
        per_run = {}
        for run_id, event_id in rows:
            per_run.setdefault(run_id, []).append(event_id)
        groups = [(r, tuple(es)) for r, es in per_run.items()]
        groups.append((run_ids[0], (10**9,)))  # no such event
        many = store.xform_inputs_many(groups)
        for run_id, event_ids in groups:
            single = store.xform_inputs(list(event_ids))
            assert binding_keys(many[(run_id, event_ids)]) == binding_keys(
                single
            )

    def test_deleted_run_keys_in_mixed_batch(self, populated):
        store, run_ids = populated
        keys = all_keys(store, run_ids)
        store.delete_run(run_ids[1])
        many = store.find_xform_inputs_matching_many(keys)
        for key in keys:
            expected = store.find_xform_inputs_matching(*key[:3], key[3])
            assert binding_keys(many[batch_key_id(key)]) == binding_keys(
                expected
            )
            if key[0] == run_ids[1]:
                assert many[batch_key_id(key)] == []

    def test_empty_key_set(self, populated):
        store, _ = populated
        assert store.find_xform_inputs_matching_many([]) == {}
        assert store.find_xform_by_output_many([]) == {}
        assert store.find_xfer_into_many([]) == {}
        assert store.xform_inputs_many([]) == {}


class TestChunking:
    def test_chunk_boundary_straddle(self, populated):
        """A key set of chunk_size + 1 must split into exactly 2 statements
        and still answer every key."""
        store, run_ids = populated
        keys = all_keys(store, run_ids)
        chunk = len(keys) - 1
        stats = StoreStats()
        many = store.find_xform_inputs_matching_many(
            keys, stats=stats, chunk_size=chunk
        )
        assert stats.batch_lookups == 2
        assert stats.queries == 2
        assert set(many) == {batch_key_id(k) for k in keys}

    def test_bound_variable_budget_forces_early_flush(self, populated):
        """Deep indices inflate per-key parameter cost; the chunker must
        flush before SQLite's bound-variable limit regardless of the
        configured chunk size."""
        store, run_ids = populated
        deep = Index.of(tuple(range(40)))  # 41 prefixes * 5 + 6 params
        keys = [
            (run_ids[0], "A", "x", deep) for _ in range(10)
        ]
        stats = StoreStats()
        store.find_xform_inputs_matching_many(
            keys, stats=stats, chunk_size=500
        )
        # 211 params per key, budget 900 -> at most 4 keys per statement.
        assert stats.batch_lookups >= 3

    def test_invalid_chunk_size(self, populated):
        store, run_ids = populated
        with pytest.raises(ValueError):
            store.find_xform_inputs_matching_many(
                [(run_ids[0], "A", "x", Index.of((0,)))], chunk_size=0
            )


class TestQueryPlans:
    """The VALUES-join must stay index-driven (paper Fig. 6 discipline).

    Asserted through the shared :class:`PlanGuard` fixture from
    :mod:`repro.analysis.planlint` — the same classifier the
    ``repro-prov plan-lint`` CI gate runs — instead of hand-rolled
    EXPLAIN string matching.
    """

    def test_xform_io_batch_join_uses_covering_index(self, populated):
        store, run_ids = populated
        store.create_indexes()
        keys = all_keys(store, run_ids)
        guard = PlanGuard(store)
        plans = guard.assert_indexed(
            lambda: store.find_xform_inputs_matching_many(keys)
        )
        # Both VALUES-join branches seek xform_io through a real index.
        seeks = [
            access
            for plan in plans
            for access in plan.accesses
            if access.table == "xform_io"
        ]
        assert seeks
        assert all(
            access.path in ("covering-seek", "index-seek") for access in seeks
        )

    def test_xfer_batch_join_uses_dst_index(self, populated):
        store, run_ids = populated
        store.create_indexes()
        keys = all_keys(store, run_ids)
        guard = PlanGuard(store)
        plans = guard.assert_indexed(
            lambda: store.find_xfer_into_many(keys)
        )
        xfer_indexes = {
            access.index
            for plan in plans
            for access in plan.accesses
            if access.table == "xfer"
        }
        assert "ix_xfer_dst" in xfer_indexes

    def test_plan_guard_flags_scan_after_index_drop(self, populated):
        store, run_ids = populated
        keys = all_keys(store, run_ids)
        store.drop_indexes()
        guard = PlanGuard(store)
        with pytest.raises(AssertionError, match="full-scan on xform_io"):
            guard.assert_indexed(
                lambda: store.find_xform_inputs_matching_many(keys)
            )
        store.create_indexes()

    def test_batch_index_in_secondary_set(self, populated):
        store, _ = populated
        store.create_indexes()
        assert store.has_indexes()
        names = {
            row[0]
            for row in store._read(
                "SELECT name FROM sqlite_master WHERE type = 'index'", []
            )
        }
        assert "ix_xform_io_batch" in names
        assert "ix_xfer_dst" in names
        store.drop_indexes()
        names = {
            row[0]
            for row in store._read(
                "SELECT name FROM sqlite_master WHERE type = 'index'", []
            )
        }
        assert "ix_xform_io_batch" not in names
        store.create_indexes()
        assert store.has_indexes()
