"""Tests for in-memory traces (repro.provenance.trace)."""

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.provenance.capture import capture_run
from repro.provenance.trace import Trace, TraceBuilder, merge_statistics, new_run_id
from repro.values.index import Index
from repro.workflow.model import PortRef

from tests.conftest import build_diamond_workflow


class TestRunIds:
    def test_unique(self):
        ids = {new_run_id() for _ in range(100)}
        assert len(ids) == 100

    def test_prefix(self):
        assert new_run_id("sweep").startswith("sweep-")


class TestTraceBuilder:
    def test_collects_events(self):
        builder = TraceBuilder("r1", "wf")
        xform = XformEvent(
            "P",
            inputs=(Binding(PortRef("P", "x"), Index()),),
            outputs=(Binding(PortRef("P", "y"), Index()),),
        )
        xfer = XferEvent(
            Binding(PortRef("P", "y"), Index()),
            Binding(PortRef("Q", "x"), Index()),
        )
        builder.on_xform(xform)
        builder.on_xfer(xfer)
        assert builder.trace.xforms == [xform]
        assert builder.trace.xfers == [xfer]
        assert builder.trace.run_id == "r1"
        assert builder.trace.workflow == "wf"

    def test_default_run_id_generated(self):
        assert TraceBuilder().trace.run_id


class TestTraceStatistics:
    def make_trace(self, size=2) -> Trace:
        captured = capture_run(build_diamond_workflow(), {"size": size})
        return captured.trace

    def test_record_count_matches_manual_count(self):
        trace = self.make_trace(2)
        manual = sum(len(e.inputs) + len(e.outputs) for e in trace.xforms)
        manual += len(trace.xfers)
        assert trace.record_count == manual

    def test_processor_names(self):
        assert self.make_trace().processor_names == ("A", "B", "F", "GEN")

    def test_instances_of(self):
        trace = self.make_trace(3)
        assert len(trace.instances_of("F")) == 9
        assert trace.instances_of("ZZ") == []

    def test_xform_events_producing(self):
        trace = self.make_trace(2)
        events = list(trace.xform_events_producing("A", "y"))
        assert len(events) == 2
        assert not list(trace.xform_events_producing("A", "nope"))

    def test_xfer_events_into(self):
        trace = self.make_trace(2)
        assert len(list(trace.xfer_events_into("F", "a"))) == 2
        assert not list(trace.xfer_events_into("F", "zz"))

    def test_bindings_iterates_everything(self):
        trace = self.make_trace(1)
        bindings = list(trace.bindings())
        xform_bindings = sum(len(e.inputs) + len(e.outputs) for e in trace.xforms)
        assert len(bindings) == xform_bindings + 2 * len(trace.xfers)

    def test_merge_statistics(self):
        traces = [self.make_trace(1), self.make_trace(2)]
        stats = merge_statistics(traces)
        assert stats["runs"] == 2
        assert stats["records"] == sum(t.record_count for t in traces)
        assert stats["xform_events"] == sum(len(t.xforms) for t in traces)
