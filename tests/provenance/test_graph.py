"""Tests for the provenance graph view and reference lineage."""

import networkx as nx

from repro.provenance.capture import capture_run
from repro.provenance.graph import (
    leaf_coverage,
    provenance_digraph,
    reference_lineage,
    sources_of,
)
from repro.values.index import Index

from tests.conftest import build_diamond_workflow


def captured_diamond(size=2):
    return capture_run(build_diamond_workflow(), {"size": size})


class TestDigraph:
    def test_is_dag(self):
        graph = provenance_digraph(captured_diamond().trace)
        assert nx.is_directed_acyclic_graph(graph)

    def test_nodes_are_binding_keys(self):
        graph = provenance_digraph(captured_diamond().trace)
        assert ("GEN", "list", "") in graph.nodes
        assert ("F", "y", "0.1") in graph.nodes

    def test_edge_kinds(self):
        graph = provenance_digraph(captured_diamond().trace)
        kinds = {data["kind"] for _, _, data in graph.edges(data=True)}
        assert kinds == {"xform", "xfer"}

    def test_graph_metadata(self):
        captured = captured_diamond()
        graph = provenance_digraph(captured.trace)
        assert graph.graph["run_id"] == captured.run_id
        assert graph.graph["workflow"] == "wf"

    def test_sources_are_workflow_inputs(self):
        trace = captured_diamond().trace
        assert ("wf", "size") in sources_of(trace)


class TestReferenceLineage:
    def test_fine_grained_query(self):
        captured = captured_diamond()
        result = reference_lineage(
            captured.trace, "F", "y", Index(0, 1), focus=["A", "B"]
        )
        assert sorted(b.key() for b in result) == [
            ("A", "x", "0"), ("B", "x", "1"),
        ]

    def test_focus_filters_collection(self):
        captured = captured_diamond()
        result = reference_lineage(
            captured.trace, "F", "y", Index(0, 1), focus=["GEN"]
        )
        assert [b.key() for b in result] == [("GEN", "size", "")]

    def test_empty_focus_collects_nothing(self):
        captured = captured_diamond()
        assert reference_lineage(captured.trace, "F", "y", Index(0, 1), []) == set()

    def test_query_from_workflow_output(self):
        captured = captured_diamond()
        result = reference_lineage(
            captured.trace, "wf", "out", Index(1, 0), focus=["A", "B"]
        )
        assert sorted(b.key() for b in result) == [
            ("A", "x", "1"), ("B", "x", "0"),
        ]

    def test_coarse_query_covers_everything(self):
        captured = captured_diamond()
        result = reference_lineage(captured.trace, "wf", "out", Index(), ["A", "B"])
        keys = sorted(b.key() for b in result)
        assert keys == [
            ("A", "x", "0"), ("A", "x", "1"),
            ("B", "x", "0"), ("B", "x", "1"),
        ]

    def test_unknown_start_is_empty(self):
        captured = captured_diamond()
        assert reference_lineage(captured.trace, "ZZ", "y", Index(), ["A"]) == set()


class TestLeafCoverage:
    def test_atomic_binding_covers_itself(self):
        captured = captured_diamond()
        result = reference_lineage(captured.trace, "F", "y", Index(0, 0), ["A"])
        assert leaf_coverage(result) == {("A", "x", "0")}

    def test_list_binding_expands_to_leaves(self):
        captured = captured_diamond()
        result = reference_lineage(captured.trace, "A", "y", Index(), ["GEN"])
        coverage = leaf_coverage(result)
        # GEN:size is atomic -> covers itself.
        assert coverage == {("GEN", "size", "")}
