"""Service and CLI surface of the set-based batched read path.

Covers the ``batch=bool|BatchConfig`` parameter on
``ProvenanceService.lineage``/``lineage_many``, the round-trip
accounting on ``MultiRunResult`` (``aggregate_stats``/``sql_queries``),
the ISSUE 5 acceptance shape — a 20-run focused-PD query answered in
``ceil(keys/chunk)`` round-trips with bindings identical to the
unbatched path — and the ``--batch/--no-batch/--batch-size`` CLI flags
with the ``--verbose`` round-trip printout.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.cli import main
from repro.provenance.store import (
    DEFAULT_BATCH_CHUNK,
    BatchConfig,
    StoreStats,
)
from repro.query.base import LineageResult, MultiRunResult
from repro.query.indexproj import build_plan
from repro.service import ProvenanceService
from repro.testbed.workloads import protein_discovery_workload
from repro.workflow.depths import propagate_depths


@pytest.fixture(scope="module")
def pd_service(tmp_path_factory):
    workload = protein_discovery_workload()
    tmp = tmp_path_factory.mktemp("service-batch")
    service = ProvenanceService(str(tmp / "pd.db"), cache=False)
    service.register_workflow(workload.flow, workload.registry)
    for _ in range(20):
        service.run(workload.flow.name, workload.inputs)
    service.store.create_indexes()
    yield workload, service
    service.close()


class TestServiceBatchParam:
    def test_batch_true_matches_unbatched(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        reference = service.lineage(query)
        batched = service.lineage(query, batch=True)
        assert (
            batched.binding_keys_by_run() == reference.binding_keys_by_run()
        )

    def test_batch_config_chunk_size(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        batched = service.lineage(query, batch=BatchConfig(chunk_size=7))
        assert batched.aggregate_stats().batch_chunk_size == 7

    def test_batch_naive_strategy(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        reference = service.lineage(query, strategy="naive")
        batched = service.lineage(query, strategy="naive", batch=True)
        assert (
            batched.binding_keys_by_run() == reference.binding_keys_by_run()
        )
        assert batched.sql_queries < reference.sql_queries

    def test_batch_wins_over_workers(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        result = service.lineage(query, batch=True, workers=4)
        # The batched path shares one stats object across runs; the
        # parallel path would have per-run stats objects.
        stats_ids = {id(r.stats) for r in result.per_run.values()}
        assert len(stats_ids) == 1

    def test_legacy_batched_flag_still_works(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        result = service.lineage(query, batched=True)
        assert result.aggregate_stats().batch_lookups > 0

    def test_batch_rejects_garbage(self, pd_service):
        workload, service = pd_service
        with pytest.raises(TypeError):
            service.lineage(workload.focused_query(), batch="always")

    def test_lineage_many_batched(self, pd_service):
        workload, service = pd_service
        queries = [workload.focused_query(), workload.unfocused_query()]
        unbatched = service.lineage_many(queries)
        batched = service.lineage_many(queries, batch=True)
        for got, want in zip(batched, unbatched):
            assert got.binding_keys_by_run() == want.binding_keys_by_run()
            assert got.sql_queries <= want.sql_queries


class TestAcceptance:
    """ISSUE 5: 20-run focused PD in O(ceil(keys/chunk)) round-trips."""

    def test_focused_pd_round_trip_collapse(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        analysis = propagate_depths(workload.flow.flattened())
        plan = build_plan(analysis, query)
        keys = len(plan) * 20
        for chunk in (DEFAULT_BATCH_CHUNK, 4):
            batched = service.lineage(
                query, batch=BatchConfig(chunk_size=chunk)
            )
            assert batched.sql_queries == math.ceil(keys / chunk)
        # compiled=False: this acceptance pins the *interpreted* per-key
        # round-trip count (compiled execution would collapse it to the
        # batched shape by default).
        unbatched = service.lineage(query, compiled=False)
        assert unbatched.sql_queries == keys
        batched = service.lineage(query, batch=True)
        assert (
            batched.binding_keys_by_run() == unbatched.binding_keys_by_run()
        )
        assert unbatched.sql_queries / batched.sql_queries >= 3.0

    def test_explain_plan_reports_round_trips(self, pd_service):
        workload, service = pd_service
        query = workload.focused_query()
        analysis = propagate_depths(workload.flow.flattened())
        plan = build_plan(analysis, query)
        explanation = service.explain_plan(query, runs=20)
        assert explanation.unbatched_round_trips == len(plan) * 20
        assert explanation.batched_round_trips == math.ceil(
            len(plan) * 20 / DEFAULT_BATCH_CHUNK
        )
        assert "round-trips:" in explanation.summary()


class TestAggregateStats:
    def test_dedupes_shared_stats(self):
        shared = StoreStats(queries=3, rows=30)
        per_run = {
            f"r{i}": LineageResult(
                query=None, run_id=f"r{i}", bindings=[], stats=shared
            )
            for i in range(5)
        }
        result = MultiRunResult(query=None, per_run=per_run)
        assert result.aggregate_stats().queries == 3
        assert result.sql_queries == 3

    def test_sums_distinct_stats(self):
        per_run = {
            f"r{i}": LineageResult(
                query=None,
                run_id=f"r{i}",
                bindings=[],
                stats=StoreStats(queries=2, rows=5),
            )
            for i in range(4)
        }
        result = MultiRunResult(query=None, per_run=per_run)
        assert result.sql_queries == 8
        assert result.aggregate_stats().rows == 20


class TestCliBatch:
    QUERY_ARGS = [
        "--workload", "gk",
        "--node", "genes2kegg", "--port", "paths_per_gene",
        "--index", "0", "--focus", "get_pathways_by_genes",
    ]

    @pytest.fixture
    def gk_db(self, tmp_path):
        db = str(tmp_path / "gk.db")
        assert main(["run", "--workload", "gk", "--db", db, "--runs", "5"]) == 0
        return db

    def _query(self, db, *extra, verbose=False):
        head = ["--verbose"] if verbose else []
        return [*head, "query", "--db", db, *self.QUERY_ARGS, *extra]

    def test_batch_flag_runs(self, gk_db, capsys):
        capsys.readouterr()
        assert main(self._query(gk_db, "--batch")) == 0
        out = capsys.readouterr().out
        assert "query: lin(" in out

    def test_batch_and_no_batch_answers_agree(self, gk_db, capsys):
        capsys.readouterr()
        assert main(self._query(gk_db, "--no-batch")) == 0
        plain = capsys.readouterr().out
        assert main(self._query(gk_db, "--batch")) == 0
        batched = capsys.readouterr().out
        # Identical bindings, line for line.
        assert [
            line for line in plain.splitlines() if line.startswith("  ")
        ] == [
            line for line in batched.splitlines() if line.startswith("  ")
        ]

    def test_verbose_prints_round_trips(self, gk_db, capsys):
        capsys.readouterr()
        assert main(self._query(gk_db, "--batch", verbose=True)) == 0
        out = capsys.readouterr().out
        match = re.search(
            r"sql round-trips: (\d+) \((\d+) rows, (\d+) batched statements "
            r"covering (\d+) lookup keys \(chunk=(\d+)\)\)",
            out,
        )
        assert match is not None
        assert int(match.group(1)) >= 1
        assert int(match.group(4)) == 5  # 1 planned lookup x 5 runs
        assert int(match.group(5)) == DEFAULT_BATCH_CHUNK

    def test_verbose_unbatched_round_trips(self, gk_db, capsys):
        # --no-compiled: pins the interpreted one-query-per-key shape
        # (compiled execution collapses these into one grid statement).
        capsys.readouterr()
        assert main(self._query(gk_db, "--no-compiled", verbose=True)) == 0
        out = capsys.readouterr().out
        match = re.search(r"sql round-trips: (\d+) \((\d+) rows\)", out)
        assert match is not None
        assert int(match.group(1)) == 5

    def test_batch_size_implies_batch(self, gk_db, capsys):
        capsys.readouterr()
        assert main(
            self._query(gk_db, "--batch-size", "2", verbose=True)
        ) == 0
        out = capsys.readouterr().out
        match = re.search(
            r"(\d+) batched statements covering (\d+) lookup keys "
            r"\(chunk=(\d+)\)",
            out,
        )
        assert match is not None
        # 5 keys at chunk 2 -> 3 statements.
        assert int(match.group(1)) == 3
        assert int(match.group(3)) == 2

    def test_batch_naive_strategy_cli(self, gk_db, capsys):
        capsys.readouterr()
        assert main(
            self._query(gk_db, "--batch", "--strategy", "naive")
        ) == 0
        out = capsys.readouterr().out
        assert "query: lin(" in out
