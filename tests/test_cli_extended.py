"""Tests for the extended CLI commands (stats, depths, validate, explain,
prov-export)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def populated_db(tmp_path):
    db = str(tmp_path / "t.db")
    main(["run", "--synthetic-l", "2", "--synthetic-d", "3", "--db", db,
          "--runs", "2"])
    return db


class TestStats:
    def test_reports_counts(self, populated_db, capsys):
        capsys.readouterr()
        assert main(["stats", "--db", populated_db]) == 0
        out = capsys.readouterr().out
        assert "runs            2" in out
        assert "records" in out
        assert out.count("  run ") == 2


class TestDepths:
    def test_prints_depth_table(self, capsys):
        assert main(["depths", "--synthetic-l", "2"]) == 0
        out = capsys.readouterr().out
        assert "2TO1_FINAL:y" in out
        # The final output port sits two levels above its declared depth.
        final_row = next(
            line for line in out.splitlines() if line.startswith("2TO1_FINAL:y")
        )
        assert final_row.split()[-2:] == ["0", "2"]

    def test_workload_depths(self, capsys):
        assert main(["depths", "--workload", "gk"]) == 0
        out = capsys.readouterr().out
        assert "get_pathways_by_genes:genes_id_list" in out


class TestValidate:
    def test_clean_workflow(self, capsys):
        assert main(["validate", "--synthetic-l", "3"]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_workflow_with_warning(self, tmp_path, capsys):
        from repro.workflow import serialize
        from repro.workflow.builder import DataflowBuilder

        flow = (
            DataflowBuilder("warned")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("P:y", "warned:out")
            .build()
        )
        path = str(tmp_path / "wf.json")
        serialize.save(flow, path)
        assert main(["validate", "--flow", path]) == 0  # warnings only
        out = capsys.readouterr().out
        assert "unbound-input" in out


class TestExplain:
    def test_explains_focused_query(self, capsys):
        assert main(
            ["explain", "--synthetic-l", "10", "--node", "2TO1_FINAL",
             "--port", "y", "--index", "0.0", "--focus", "LISTGEN_1",
             "--runs", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "INDEXPROJ trace lookups     : 5" in out
        assert "indexproj" in out
        assert "lookup ratio" in out


class TestQueryArgumentValidation:
    def test_query_requires_node_port_or_text(self, populated_db):
        with pytest.raises(SystemExit, match="provide either"):
            main(["query", "--db", populated_db, "--strategy", "naive"])

    def test_text_query_overrides_flags(self, populated_db, capsys):
        capsys.readouterr()
        assert main(
            ["query", "--db", populated_db,
             "--query", "lin(<2TO1_FINAL:y[0.0]>, {LISTGEN_1})",
             "--node", "ignored", "--port", "ignored",
             "--synthetic-l", "2"]
        ) == 0
        assert "<LISTGEN_1:size[]>" in capsys.readouterr().out


class TestImpact:
    def test_forward_query_indexproj(self, populated_db, capsys):
        capsys.readouterr()
        assert main(
            ["impact", "--db", populated_db, "--node", "LISTGEN_1",
             "--port", "list", "--index", "1", "--focus", "2TO1_FINAL",
             "--synthetic-l", "2"]
        ) == 0
        out = capsys.readouterr().out
        # Element 1 feeds row 1 and column 1 of the 3x3 product.
        assert "<2TO1_FINAL:y[1.0]>" in out
        assert "<2TO1_FINAL:y[0.1]>" in out

    def test_forward_query_naive(self, populated_db, capsys):
        capsys.readouterr()
        assert main(
            ["impact", "--db", populated_db, "--node", "LISTGEN_1",
             "--port", "list", "--index", "1", "--focus", "CHAIN1_0",
             "--strategy", "naive"]
        ) == 0
        assert "<CHAIN1_0:y[1]>" in capsys.readouterr().out

    def test_empty_store(self, tmp_path):
        from repro.provenance.store import TraceStore

        db = str(tmp_path / "empty.db")
        TraceStore(db).close()
        assert main(
            ["impact", "--db", db, "--node", "P", "--port", "x",
             "--strategy", "naive"]
        ) == 1


class TestProvExport:
    def test_exports_stored_run(self, populated_db, tmp_path, capsys):
        out_path = str(tmp_path / "trace.prov.json")
        capsys.readouterr()
        assert main(
            ["prov-export", "--db", populated_db, "--out", out_path]
        ) == 0
        with open(out_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["repro:workflow"] == "synthetic_l2"
        assert document["activity"]
        assert document["entity"]

    def test_specific_run(self, populated_db, tmp_path):
        from repro.provenance.store import TraceStore

        with TraceStore(populated_db) as store:
            run_id = store.run_ids()[1]
        out_path = str(tmp_path / "trace.prov.json")
        assert main(
            ["prov-export", "--db", populated_db, "--run", run_id,
             "--out", out_path]
        ) == 0
        with open(out_path, encoding="utf-8") as handle:
            assert json.load(handle)["repro:run"] == run_id

    def test_empty_store_fails(self, tmp_path):
        from repro.provenance.store import TraceStore

        db = str(tmp_path / "empty.db")
        TraceStore(db).close()
        assert main(
            ["prov-export", "--db", db, "--out", str(tmp_path / "x.json")]
        ) == 1


class TestLoadTraceRoundtrip:
    def test_insert_load_roundtrip(self):
        from repro.provenance.capture import capture_run
        from repro.provenance.store import TraceStore
        from tests.conftest import build_diamond_workflow

        captured = capture_run(build_diamond_workflow(), {"size": 2})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            restored = store.load_trace(captured.run_id)
        assert restored.run_id == captured.run_id
        assert restored.workflow == captured.trace.workflow
        assert [str(e) for e in restored.xforms] == [
            str(e) for e in captured.trace.xforms
        ]
        assert [str(e) for e in restored.xfers] == [
            str(e) for e in captured.trace.xfers
        ]
        # Values survive the JSON round-trip too.
        originals = {b.key(): b.value for b in captured.trace.bindings()}
        for binding in restored.bindings():
            assert binding.value == originals[binding.key()]

    def test_unknown_run_raises(self):
        from repro.provenance.store import TraceStore

        with TraceStore() as store:
            with pytest.raises(KeyError):
                store.load_trace("ghost")
