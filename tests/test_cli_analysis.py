"""End-to-end tests for the analysis CLI commands (lint, check-query)."""

import json

import pytest

from repro.cli import main
from repro.workflow import serialize
from repro.workflow.builder import DataflowBuilder

from tests.conftest import build_diamond_workflow


def build_warned_flow():
    """One finding only: P:x is unbound (W002)."""
    return (
        DataflowBuilder("wf")
        .output("out", "string")
        .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                   operation="identity")
        .arc("P:y", "wf:out")
        .build()
    )


@pytest.fixture
def clean_flow_file(tmp_path):
    path = str(tmp_path / "clean.json")
    serialize.save(build_diamond_workflow(), path)
    return path


@pytest.fixture
def warned_flow_file(tmp_path):
    path = str(tmp_path / "warned.json")
    serialize.save(build_warned_flow(), path)
    return path


class TestLintCommand:
    def test_clean_flow_exits_zero(self, clean_flow_file, capsys):
        assert main(["lint", "--flow", clean_flow_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "E001" in out and "W006" in out and "cycle" in out

    def test_warnings_pass_under_default_fail_on(self, warned_flow_file,
                                                 capsys):
        assert main(["lint", "--flow", warned_flow_file]) == 0
        assert "W002" in capsys.readouterr().out

    def test_fail_on_warning(self, warned_flow_file):
        assert main(
            ["lint", "--flow", warned_flow_file, "--fail-on", "warning"]
        ) == 1

    def test_fail_on_never(self, warned_flow_file):
        assert main(
            ["lint", "--flow", warned_flow_file, "--fail-on", "never"]
        ) == 0

    def test_severity_promotion_fails_the_run(self, warned_flow_file):
        assert main(
            ["lint", "--flow", warned_flow_file, "--severity", "W002=error"]
        ) == 1

    def test_bad_severity_syntax_exits(self, warned_flow_file):
        with pytest.raises(SystemExit):
            main(["lint", "--flow", warned_flow_file, "--severity", "W002"])

    def test_suppress_silences_the_rule(self, warned_flow_file, capsys):
        assert main(
            ["lint", "--flow", warned_flow_file, "--suppress", "W002",
             "--fail-on", "warning"]
        ) == 0
        assert "W002" not in capsys.readouterr().out

    def test_json_format(self, warned_flow_file, capsys):
        assert main(
            ["lint", "--flow", warned_flow_file, "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.analysis/1"
        assert [f["code"] for f in document["findings"]] == ["W002"]

    def test_sarif_written_to_file(self, warned_flow_file, tmp_path):
        out_path = tmp_path / "report.sarif"
        assert main(
            ["lint", "--flow", warned_flow_file, "--format", "sarif",
             "--output", str(out_path)]
        ) == 0
        document = json.loads(out_path.read_text())
        assert document["version"] == "2.1.0"
        assert [
            r["ruleId"] for r in document["runs"][0]["results"]
        ] == ["W002"]

    def test_lint_workload(self, capsys):
        assert main(["lint", "--workload", "gk", "--fail-on", "never"]) == 0

    def test_lint_synthetic(self, capsys):
        assert main(["lint", "--synthetic-l", "2", "--fail-on", "error"]) == 0


class TestCheckQueryCommand:
    def test_viable_query(self, clean_flow_file, capsys):
        assert main(
            ["check-query", "--flow", clean_flow_file,
             "--query", "lin(<wf:out[0.1]>, {A, B})"]
        ) == 0
        out = capsys.readouterr().out
        assert "viable" in out
        assert "auto strategy: indexproj" in out

    def test_provably_empty_query(self, clean_flow_file, capsys):
        assert main(
            ["check-query", "--flow", clean_flow_file,
             "--query", "lin(<A:y[0]>, {F})"]
        ) == 0
        out = capsys.readouterr().out
        assert "empty" in out
        assert "0 trace lookups" in out

    def test_invalid_query_exits_two(self, clean_flow_file, capsys):
        assert main(
            ["check-query", "--flow", clean_flow_file,
             "--query", "lin(<GNE:list[0]>, {A})"]
        ) == 2
        assert "did you mean" in capsys.readouterr().out

    def test_node_port_spelling(self, clean_flow_file, capsys):
        assert main(
            ["check-query", "--flow", clean_flow_file, "--node", "wf",
             "--port", "out", "--index", "0.1", "--focus", "A,B"]
        ) == 0
        assert "viable" in capsys.readouterr().out

    def test_missing_query_spec_exits(self, clean_flow_file):
        with pytest.raises(SystemExit):
            main(["check-query", "--flow", clean_flow_file])

    def test_synthetic_flow(self, capsys):
        assert main(
            ["check-query", "--synthetic-l", "2", "--node", "synthetic_l2",
             "--port", "out", "--index", "0",
             "--focus", "LISTGEN_1"]
        ) == 0


class TestQueryAutoStrategy:
    @pytest.fixture
    def populated_db(self, tmp_path):
        db = str(tmp_path / "t.db")
        main(["run", "--synthetic-l", "2", "--synthetic-d", "3", "--db", db])
        return db

    def test_auto_strategy_query(self, populated_db, capsys):
        capsys.readouterr()
        assert main(
            ["query", "--db", populated_db, "--node", "2TO1_FINAL",
             "--port", "y", "--index", "0.0",
             "--focus", "LISTGEN_1", "--synthetic-l", "2",
             "--strategy", "auto"]
        ) == 0
        assert "run " in capsys.readouterr().out
