"""Service-level tests for the static-analysis integration.

The load-bearing acceptance claim lives here: a provably-empty lineage
query is answered by the pre-checker with **zero** trace-store reads,
visible in the observability counters.
"""

import pytest

from repro.analysis.cost import PlanExplanation
from repro.analysis.precheck import QueryValidationError
from repro.obs.core import Observability
from repro.service import ProvenanceService
from repro.workflow.model import WorkflowError

from tests.conftest import build_diamond_workflow


@pytest.fixture
def obs():
    return Observability()


@pytest.fixture
def service(obs):
    with ProvenanceService(obs=obs) as svc:
        svc.register_workflow(build_diamond_workflow())
        yield svc


class TestFastReject:
    def test_provably_empty_query_reads_nothing(self, service, obs):
        service.run("wf", {"size": 2})
        reads_before = obs.counter_value("store.reads")
        # F consumes A's output: it can never be upstream of A:y.
        result = service.lineage("lin(<A:y[0]>, {F})")
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["store.reads"] == reads_before
        assert result.per_run == {}
        assert result.wall_seconds == 0.0

    def test_pinned_runs_get_empty_answers(self, service):
        run_id = service.run("wf", {"size": 2})
        result = service.lineage("lin(<A:y[0]>, {F})", runs=[run_id])
        assert set(result.per_run) == {run_id}
        assert result.per_run[run_id].bindings == []

    def test_fast_reject_counters(self, service, obs):
        service.run("wf", {"size": 2})
        service.lineage("lin(<A:y[0]>, {F})")
        assert obs.counter_value("analysis.precheck_total") == 1
        assert obs.counter_value("analysis.precheck_empty") == 1
        assert obs.counter_value("analysis.fast_rejects") == 1

    def test_viable_query_is_counted_not_rejected(self, service, obs):
        run_id = service.run("wf", {"size": 2})
        result = service.lineage("lin(<wf:out[0.1]>, {A, B})")
        assert obs.counter_value("analysis.precheck_viable") == 1
        assert obs.counter_value("analysis.fast_rejects") == 0
        assert sorted(b.key() for b in result.per_run[run_id].bindings) == [
            ("A", "x", "0"), ("B", "x", "1"),
        ]

    def test_precheck_false_bypasses_the_triage(self, service, obs):
        run_id = service.run("wf", {"size": 2})
        result = service.lineage("lin(<A:y[0]>, {F})", precheck=False)
        assert obs.counter_value("analysis.precheck_total") == 0
        # The engines agree the answer is empty — just more expensively.
        assert result.per_run[run_id].bindings == []

    def test_empty_answer_agrees_with_execution(self, service):
        run_id = service.run("wf", {"size": 2})
        fast = service.lineage("lin(<A:y[0]>, {F})", runs=[run_id])
        slow = service.lineage(
            "lin(<A:y[0]>, {F})", runs=[run_id], precheck=False
        )
        assert fast.per_run[run_id].bindings == slow.per_run[run_id].bindings


class TestInvalidQueries:
    def test_unknown_port_raises_with_suggestions(self, service, obs):
        service.run("wf", {"size": 2})
        with pytest.raises(QueryValidationError) as excinfo:
            service.lineage("lin(<GEN:lst[0]>, {A})")
        report = excinfo.value.report
        assert report.issues[0].kind == "unknown-port"
        assert "list" in report.issues[0].suggestions
        assert obs.counter_value("analysis.precheck_invalid") == 1

    def test_index_too_deep_raises(self, service):
        service.run("wf", {"size": 2})
        with pytest.raises(QueryValidationError, match="index"):
            service.lineage("lin(<wf:out[0.1.2.3]>, {A})")

    def test_unknown_node_gets_did_you_mean(self, service):
        with pytest.raises(WorkflowError, match="did you mean"):
            service.lineage("lin(<GNE:list[0]>, {A})")

    def test_error_is_a_workflow_error(self, service):
        # Callers that already catch WorkflowError keep working.
        with pytest.raises(WorkflowError):
            service.lineage("lin(<GEN:lst[0]>, {A})")


class TestAutoStrategy:
    def test_auto_matches_explicit_indexproj(self, service, obs):
        run_id = service.run("wf", {"size": 3})
        auto = service.lineage("lin(<wf:out[0.1]>, {A, B})", strategy="auto")
        explicit = service.lineage(
            "lin(<wf:out[0.1]>, {A, B})", strategy="indexproj"
        )
        assert (
            auto.per_run[run_id].binding_keys()
            == explicit.per_run[run_id].binding_keys()
        )
        assert obs.counter_value("analysis.auto_indexproj") == 1

    def test_auto_skipped_on_fast_reject(self, service, obs):
        service.run("wf", {"size": 2})
        service.lineage("lin(<A:y[0]>, {F})", strategy="auto")
        assert obs.counter_value("analysis.auto_indexproj") == 0
        assert obs.counter_value("analysis.auto_naive") == 0


class TestLineageMany:
    def test_batch_mixes_verdicts(self, service):
        run_id = service.run("wf", {"size": 2})
        results = service.lineage_many(
            ["lin(<wf:out[0.1]>, {A, B})", "lin(<A:y[0]>, {F})"],
        )
        assert len(results[0].per_run[run_id].bindings) == 2
        assert results[1].per_run == {}

    def test_batch_propagates_invalid(self, service):
        service.run("wf", {"size": 2})
        with pytest.raises(QueryValidationError):
            service.lineage_many(["lin(<GEN:lst[0]>, {A})"])


class TestExplainPlan:
    def test_viable_plan(self, service):
        service.run("wf", {"size": 2})
        plan = service.explain_plan("lin(<wf:out[0.1]>, {A, B})")
        assert isinstance(plan, PlanExplanation)
        assert plan.report.is_viable
        assert plan.chosen_strategy == "indexproj"

    def test_empty_plan_without_any_run(self, service):
        plan = service.explain_plan("lin(<A:y[0]>, {F})", runs=1)
        assert plan.report.is_empty
        assert plan.chosen_strategy == "none"
