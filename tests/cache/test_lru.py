"""Tests for the bounded LRU primitive (repro.cache.lru)."""

from __future__ import annotations

import sys

from repro.cache import LRUCache, MISSING, approx_size


class TestApproxSize:
    def test_scalars(self):
        assert approx_size("abc") == sys.getsizeof("abc")
        assert approx_size(42) == sys.getsizeof(42)

    def test_containers_sum_members(self):
        assert approx_size(["ab", "cd"]) > approx_size(["ab"])
        assert approx_size({"k": "v"}) > approx_size({})

    def test_shared_objects_counted_once(self):
        shared = "x" * 1000
        assert approx_size([shared, shared]) < 2 * approx_size(shared)

    def test_objects_with_dict_and_slots(self):
        class WithDict:
            def __init__(self):
                self.payload = "y" * 500

        class WithSlots:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = "y" * 500

        assert approx_size(WithDict()) > 500
        assert approx_size(WithSlots()) > 500


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache()
        assert cache.get("k") is MISSING
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert len(cache) == 1

    def test_counters(self):
        cache = LRUCache()
        cache.get("absent")
        cache.put("k", "v")
        cache.get("k")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_peek_moves_no_counters(self):
        cache = LRUCache()
        cache.put("k", "v")
        assert cache.peek("k") == "v"
        assert cache.peek("absent") is MISSING
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_entry_bound_evicts_least_recent(self):
        cache = LRUCache(max_entries=2, max_bytes=0)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # freshen a; b is now least recently used
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_byte_bound_evicts(self):
        item = "x" * 1000
        cache = LRUCache(max_entries=0, max_bytes=3 * approx_size(item))
        for key in range(6):
            cache.put(key, "x" * 1000)
        assert len(cache) < 6
        assert cache.current_bytes <= 3 * approx_size(item)

    def test_zero_bounds_disable_limits(self):
        cache = LRUCache(max_entries=0, max_bytes=0)
        for key in range(500):
            cache.put(key, key)
        assert len(cache) == 500

    def test_put_replaces_and_reaccounts(self):
        cache = LRUCache()
        cache.put("k", "small")
        small = cache.current_bytes
        cache.put("k", "x" * 10_000)
        assert len(cache) == 1
        assert cache.current_bytes > small
        cache.put("k", "small")
        assert cache.current_bytes == small

    def test_discard(self):
        cache = LRUCache()
        cache.put("k", "v")
        cache.discard("k")
        cache.discard("k")  # idempotent
        assert cache.get("k") is MISSING
        assert cache.current_bytes == 0

    def test_invalidate_where(self):
        cache = LRUCache()
        for key in ("a1", "a2", "b1"):
            cache.put(key, key)
        dropped = cache.invalidate_where(lambda key: key.startswith("a"))
        assert dropped == 2
        assert cache.get("b1") == "b1"
        assert cache.get("a1") is MISSING
        assert cache.stats()["invalidations"] == 2

    def test_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_explicit_size_overrides_estimate(self):
        cache = LRUCache(max_entries=0, max_bytes=100)
        cache.put("k", "x" * 10_000, size=10)
        assert cache.get("k") is not MISSING
