"""Tests for the trace-lookup cache (repro.cache.trace)."""

from __future__ import annotations

from repro.cache import TraceReadCache
from repro.obs import Observability
from repro.provenance.capture import capture_run
from repro.provenance.store import StoreStats, TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values.index import Index

from tests.conftest import build_diamond_workflow


def _store_with_runs(count=2, size=2):
    store = TraceStore()
    run_ids = []
    flow = build_diamond_workflow()
    for _ in range(count):
        captured = capture_run(flow, {"size": size})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return store, run_ids


def _query():
    return LineageQuery.create("wf", "out", [1, 1], focus=["GEN", "A", "B"])


class TestLookupMemoization:
    def test_hit_returns_identical_payload_with_zero_store_reads(self):
        store, run_ids = _store_with_runs()
        cache = TraceReadCache(store)
        run = run_ids[0]
        cold_stats, warm_stats = StoreStats(), StoreStats()
        cold = cache.find_xform_inputs_matching(
            run, "F", "y", Index.of([1, 1]), cold_stats
        )
        warm = cache.find_xform_inputs_matching(
            run, "F", "y", Index.of([1, 1]), warm_stats
        )
        assert [b.key() for b in warm] == [b.key() for b in cold]
        assert cold_stats.queries == 1
        assert warm_stats.queries == 0
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        store.close()

    def test_returned_lists_are_fresh_objects(self):
        store, run_ids = _store_with_runs()
        cache = TraceReadCache(store)
        first = cache.find_xform_by_output(run_ids[0], "wf", "out", Index.of([1, 1]))
        first.append("sentinel")
        second = cache.find_xform_by_output(run_ids[0], "wf", "out", Index.of([1, 1]))
        assert "sentinel" not in second
        store.close()

    def test_multi_variant_shares_keys_with_single(self):
        store, run_ids = _store_with_runs(count=3)
        cache = TraceReadCache(store)
        index = Index.of([1, 1])
        # Warm one run through the single-run path.
        cache.find_xform_inputs_matching(run_ids[0], "F", "y", index)
        stats = StoreStats()
        multi = cache.find_xform_inputs_matching_multi(
            run_ids, "F", "y", index, stats
        )
        # The warm run was a cache hit; only the two misses hit the store,
        # in one batched round-trip.
        assert stats.queries == 1
        assert cache.stats()["hits"] == 1
        # Now everything is warm: zero further store queries.
        stats2 = StoreStats()
        again = cache.find_xform_inputs_matching_multi(
            run_ids, "F", "y", index, stats2
        )
        assert stats2.queries == 0
        assert {r: [b.key() for b in bs] for r, bs in again.items()} == {
            r: [b.key() for b in bs] for r, bs in multi.items()
        }
        store.close()

    def test_multi_variant_omits_empty_runs_like_store(self):
        store, run_ids = _store_with_runs(count=2)
        cache = TraceReadCache(store)
        bogus = Index.of([9, 9])
        direct = store.find_xform_inputs_matching_multi(run_ids, "F", "y", bogus)
        cached = cache.find_xform_inputs_matching_multi(run_ids, "F", "y", bogus)
        assert cached == direct == {}
        # Empty answers are cached too: the repeat costs nothing.
        stats = StoreStats()
        cache.find_xform_inputs_matching_multi(run_ids, "F", "y", bogus, stats)
        assert stats.queries == 0
        store.close()


class TestInvalidation:
    def test_ingest_evicts_only_that_run(self):
        store, run_ids = _store_with_runs(count=2)
        cache = TraceReadCache(store)
        index = Index.of([1, 1])
        for run in run_ids:
            cache.find_xform_inputs_matching(run, "F", "y", index)
        flow = build_diamond_workflow()
        store.insert_trace(capture_run(flow, {"size": 2}).trace)
        # Entries for the pre-existing runs survive (their generations
        # did not move) — both still hit.
        stats = StoreStats()
        for run in run_ids:
            cache.find_xform_inputs_matching(run, "F", "y", index, stats)
        assert stats.queries == 0
        store.close()

    def test_delete_and_reingest_never_serves_stale_rows(self):
        """Event ids are reused after a delete; the generation protocol
        must keep a re-ingested run's lookups from aliasing old entries."""
        store = TraceStore()
        flow = build_diamond_workflow()
        first = capture_run(flow, {"size": 2}, run_id="r")
        store.insert_trace(first.trace)
        cache = TraceReadCache(store)
        engine = NaiveEngine(store, trace_cache=cache)
        before = engine.lineage("r", _query())
        store.delete_run("r")
        second = capture_run(flow, {"size": 3}, run_id="r")
        store.insert_trace(second.trace)
        after = engine.lineage("r", _query())
        direct = NaiveEngine(store).lineage("r", _query())
        assert after.binding_keys() == direct.binding_keys()
        assert before.binding_keys() == direct.binding_keys()  # same query shape
        store.close()

    def test_global_bump_clears_everything(self):
        store, run_ids = _store_with_runs(count=2)
        cache = TraceReadCache(store)
        index = Index.of([1, 1])
        for run in run_ids:
            cache.find_xform_inputs_matching(run, "F", "y", index)
        assert cache.stats()["entries"] == 2
        store.drop_indexes()
        assert cache.stats()["entries"] == 0
        store.close()

    def test_stale_entry_validated_even_without_listener(self):
        """The generation-vector check is the backstop: a cache created
        before another cache's listener fired still refuses stale data."""
        store, run_ids = _store_with_runs(count=1)
        cache = TraceReadCache(store)
        run = run_ids[0]
        index = Index.of([1, 1])
        cache.find_xform_inputs_matching(run, "F", "y", index)
        # Simulate a listener that was never registered: put a stale
        # vector back after the bump.
        key = ("xform_in_match", run, "F", "y", index.encode())
        payload = cache._lru.peek(key)
        store.delete_run(run)
        cache._lru.put(key, payload)  # resurrect the pre-delete entry
        stats = StoreStats()
        result = cache.find_xform_inputs_matching(run, "F", "y", index, stats)
        assert result == []  # refetched from the (now empty) store
        assert stats.queries == 1
        store.close()


class TestEngineIntegration:
    def test_indexproj_with_cache_matches_without(self):
        store, run_ids = _store_with_runs(count=2)
        flow = build_diamond_workflow()
        cache = TraceReadCache(store)
        cached_engine = IndexProjEngine(store, flow, trace_cache=cache)
        plain_engine = IndexProjEngine(store, flow)
        query = _query()
        warm1 = cached_engine.lineage_multirun(run_ids, query)
        warm2 = cached_engine.lineage_multirun(run_ids, query)
        plain = plain_engine.lineage_multirun(run_ids, query)
        assert warm1.binding_keys_by_run() == plain.binding_keys_by_run()
        assert warm2.binding_keys_by_run() == plain.binding_keys_by_run()
        assert all(
            r.stats.queries == 0 for r in warm2.per_run.values()
        )
        store.close()

    def test_naive_with_cache_matches_without(self):
        store, run_ids = _store_with_runs(count=2)
        cache = TraceReadCache(store)
        cached_engine = NaiveEngine(store, trace_cache=cache)
        plain_engine = NaiveEngine(store)
        query = _query()
        warm1 = cached_engine.lineage_multirun(run_ids, query)
        warm2 = cached_engine.lineage_multirun(run_ids, query)
        plain = plain_engine.lineage_multirun(run_ids, query)
        assert warm1.binding_keys_by_run() == plain.binding_keys_by_run()
        assert warm2.binding_keys_by_run() == plain.binding_keys_by_run()
        assert all(r.stats.queries == 0 for r in warm2.per_run.values())
        store.close()

    def test_obs_counters(self):
        obs = Observability()
        store, run_ids = _store_with_runs(count=1)
        cache = TraceReadCache(store, obs=obs)
        index = Index.of([1, 1])
        cache.find_xform_inputs_matching(run_ids[0], "F", "y", index)
        cache.find_xform_inputs_matching(run_ids[0], "F", "y", index)
        counters = obs.metrics_snapshot()["counters"]
        assert counters["cache.trace_misses"] == 1
        assert counters["cache.trace_hits"] == 1
        gauges = obs.metrics_snapshot()["gauges"]
        assert gauges["cache.trace_entries"] == 1
        assert gauges["cache.trace_bytes"] > 0
        store.close()
