"""Tests for the store's write-generation protocol (cache coherence)."""

from __future__ import annotations

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore

from tests.conftest import build_diamond_workflow


def _captured(run_id=None, size=2):
    return capture_run(build_diamond_workflow(), {"size": size}, run_id=run_id)


class TestGenerations:
    def test_fresh_store_is_generation_zero(self):
        with TraceStore() as store:
            assert store.generation("anything") == 0
            assert store.global_generation == 0
            assert store.membership_generation == 0
            assert store.generation_vector(("a", "b")) == (0, (0, 0))

    def test_insert_bumps_run_and_membership(self):
        with TraceStore() as store:
            captured = _captured()
            store.insert_trace(captured.trace)
            assert store.generation(captured.run_id) == 1
            assert store.membership_generation == 1
            assert store.global_generation == 0
            assert store.generation("other-run") == 0

    def test_delete_bumps_run_and_membership(self):
        with TraceStore() as store:
            captured = _captured()
            store.insert_trace(captured.trace)
            store.delete_run(captured.run_id)
            assert store.generation(captured.run_id) == 2
            assert store.membership_generation == 2

    def test_index_maintenance_bumps_global(self):
        with TraceStore() as store:
            store.drop_indexes()
            assert store.global_generation == 1
            store.create_indexes()
            assert store.global_generation == 2

    def test_generation_vector_is_ordered(self):
        with TraceStore() as store:
            a = _captured(run_id="a")
            b = _captured(run_id="b")
            store.insert_trace(a.trace)
            store.insert_trace(b.trace)
            store.insert_trace(_captured(run_id="c").trace)
            store.delete_run("b")
            assert store.generation_vector(("a", "b")) == (0, (1, 2))
            assert store.generation_vector(("b", "a")) == (0, (2, 1))

    def test_listeners_receive_run_and_global_bumps(self):
        events = []
        with TraceStore() as store:
            store.add_invalidation_listener(events.append)
            captured = _captured()
            store.insert_trace(captured.trace)
            store.drop_indexes()
            assert events == [captured.run_id, None]

    def test_listener_may_read_generations_reentrantly(self):
        observed = []
        with TraceStore() as store:
            store.add_invalidation_listener(
                lambda run_id: observed.append(
                    (run_id, store.generation(run_id) if run_id else None)
                )
            )
            captured = _captured()
            store.insert_trace(captured.trace)
        # The listener runs *after* the bump, outside the generation lock.
        assert observed == [(captured.run_id, 1)]

    def test_bump_only_after_commit(self, tmp_path):
        """A failed insert must not bump (the data never changed)."""
        import pytest

        from repro.provenance.store import DuplicateRunError

        with TraceStore(str(tmp_path / "t.db")) as store:
            captured = _captured(run_id="dup")
            store.insert_trace(captured.trace)
            assert store.generation("dup") == 1
            with pytest.raises(DuplicateRunError):
                store.insert_trace(_captured(run_id="dup").trace)
            assert store.generation("dup") == 1
