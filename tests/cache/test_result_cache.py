"""Tests for the lineage result cache (repro.cache.results)."""

from __future__ import annotations

from repro.cache import (
    LineageResultCache,
    ResultCacheKey,
    workflow_fingerprint,
)
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine

from tests.conftest import build_diamond_workflow


def _setup(run_count=2):
    flow = build_diamond_workflow()
    store = TraceStore()
    run_ids = []
    for _ in range(run_count):
        captured = capture_run(flow, {"size": 2})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return flow, store, run_ids


def _key(flow, run_ids, query):
    return ResultCacheKey(
        fingerprint=workflow_fingerprint(flow.flattened()),
        strategy="indexproj",
        node=query.node,
        port=query.port,
        index=query.index.encode(),
        focus=query.focus,
        runs=tuple(run_ids),
    )


def _query():
    return LineageQuery.create("wf", "out", [1, 1], focus=["GEN", "A", "B"])


class TestRoundtrip:
    def test_put_get_rebuilds_fresh_result(self):
        flow, store, run_ids = _setup()
        cache = LineageResultCache(store)
        query = _query()
        executed = IndexProjEngine(store, flow).lineage_multirun(run_ids, query)
        generations = store.generation_vector(run_ids)
        key = _key(flow, run_ids, query)
        cache.put(key, executed, generations)

        hit = cache.get(key, query)
        assert hit is not None
        assert hit.from_cache is True
        assert hit.generations == generations
        assert hit.binding_keys_by_run() == executed.binding_keys_by_run()
        # Rebuilt, not shared: fresh result objects, zeroed stats/timings.
        assert hit is not executed
        for run_id, run_result in hit.per_run.items():
            assert run_result is not executed.per_run[run_id]
            assert run_result.bindings is not executed.per_run[run_id].bindings
            assert run_result.stats.queries == 0
            assert run_result.total_seconds == 0.0
        assert hit.wall_seconds == 0.0
        store.close()

    def test_miss_and_hit_counters(self):
        flow, store, run_ids = _setup()
        cache = LineageResultCache(store)
        query = _query()
        key = _key(flow, run_ids, query)
        assert cache.get(key, query) is None
        executed = IndexProjEngine(store, flow).lineage_multirun(run_ids, query)
        cache.put(key, executed, store.generation_vector(run_ids))
        assert cache.get(key, query) is not None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        store.close()

    def test_different_key_fields_are_different_entries(self):
        flow, store, run_ids = _setup()
        cache = LineageResultCache(store)
        query = _query()
        executed = IndexProjEngine(store, flow).lineage_multirun(run_ids, query)
        cache.put(_key(flow, run_ids, query), executed,
                  store.generation_vector(run_ids))
        other_focus = LineageQuery.create("wf", "out", [1, 1], focus=["GEN"])
        assert cache.get(_key(flow, run_ids, other_focus), other_focus) is None
        assert cache.get(_key(flow, run_ids[:1], query), query) is None
        store.close()


class TestCoherence:
    def test_stale_generations_refuse_hit(self):
        flow, store, run_ids = _setup()
        cache = LineageResultCache(store)
        query = _query()
        executed = IndexProjEngine(store, flow).lineage_multirun(run_ids, query)
        stale = store.generation_vector(run_ids)
        key = _key(flow, run_ids, query)
        cache.put(key, executed, stale)
        # Reinsert over one run in the scope: its generation moves on.
        store.delete_run(run_ids[0])
        assert cache.get(key, query) is None
        store.close()

    def test_listener_evicts_only_affected_scopes(self):
        flow, store, run_ids = _setup(run_count=3)
        cache = LineageResultCache(store)
        query = _query()
        engine = IndexProjEngine(store, flow)
        pair_key = _key(flow, run_ids[:2], query)
        solo_key = _key(flow, run_ids[2:], query)
        cache.put(pair_key, engine.lineage_multirun(run_ids[:2], query),
                  store.generation_vector(run_ids[:2]))
        cache.put(solo_key, engine.lineage_multirun(run_ids[2:], query),
                  store.generation_vector(run_ids[2:]))
        store.delete_run(run_ids[0])
        assert cache.stats()["entries"] == 1  # pair entry evicted eagerly
        assert cache.get(solo_key, query) is not None
        store.close()

    def test_global_bump_clears(self):
        flow, store, run_ids = _setup()
        cache = LineageResultCache(store)
        query = _query()
        executed = IndexProjEngine(store, flow).lineage_multirun(run_ids, query)
        cache.put(_key(flow, run_ids, query), executed,
                  store.generation_vector(run_ids))
        store.drop_indexes()
        assert cache.stats()["entries"] == 0
        store.close()

    def test_probe_moves_no_counters(self):
        flow, store, run_ids = _setup()
        cache = LineageResultCache(store)
        query = _query()
        key = _key(flow, run_ids, query)
        assert cache.probe(key) is False
        executed = IndexProjEngine(store, flow).lineage_multirun(run_ids, query)
        cache.put(key, executed, store.generation_vector(run_ids))
        assert cache.probe(key) is True
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        store.close()

    def test_fingerprint_distinguishes_redefined_workflows(self):
        flow = build_diamond_workflow()
        fp1 = workflow_fingerprint(flow.flattened())
        assert fp1 == workflow_fingerprint(flow.flattened())
        from repro.workflow.builder import DataflowBuilder

        other = (
            DataflowBuilder("wf")  # same name, different structure
            .input("size", "integer")
            .output("out", "list(string)")
            .processor(
                "GEN",
                inputs=[("size", "integer")],
                outputs=[("list", "list(string)")],
                operation="list_generator",
                config={"out": "list"},
            )
            .arcs(("wf:size", "GEN:size"), ("GEN:list", "wf:out"))
            .build()
        )
        assert workflow_fingerprint(other.flattened()) != fp1
