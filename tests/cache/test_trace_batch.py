"""TraceReadCache batched lookups — hit/miss split and coherence.

The batched wrappers must share entry keys with the single-key wrappers
(a cache warmed by one path serves the other), fetch only the misses of
a mixed batch, and refuse entries whose generation vector went stale.
"""

from repro.cache.trace import TraceReadCache
from repro.provenance.capture import capture_run
from repro.provenance.store import StoreStats, TraceStore, batch_key_id
from repro.values.index import Index

from tests.conftest import build_diamond_workflow


def populated(runs=2):
    flow = build_diamond_workflow()
    store = TraceStore()
    run_ids = []
    for _ in range(runs):
        captured = capture_run(flow, {"size": 3})
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return flow, store, run_ids


def keys_for(store):
    rows = store._read(
        "SELECT DISTINCT run_id, processor, port, idx FROM xform_io", []
    )
    keys = [(r, n, p, Index.decode(i)) for r, n, p, i in rows]
    keys.sort(key=lambda k: (k[0], k[1], k[2], k[3].encode()))
    return keys


class TestBatchedCache:
    def test_single_key_warm_serves_batched(self):
        flow, store, run_ids = populated()
        try:
            cache = TraceReadCache(store)
            keys = keys_for(store)
            # Warm every key through the single-key wrapper.
            for run_id, node, port, index in keys:
                cache.find_xform_inputs_matching(run_id, node, port, index)
            warm_misses = cache.misses
            stats = StoreStats()
            answers = cache.find_xform_inputs_matching_many(keys, stats)
            assert cache.misses == warm_misses  # every probe hit
            assert stats.queries == 0  # not a single store read
            for key in keys:
                expected = store.find_xform_inputs_matching(*key[:3], key[3])
                got = answers[batch_key_id(key)]
                assert [b.key() for b in got] == [b.key() for b in expected]
        finally:
            store.close()

    def test_batched_warm_serves_single_key(self):
        flow, store, run_ids = populated()
        try:
            cache = TraceReadCache(store)
            keys = keys_for(store)
            cache.find_xform_by_output_many(keys)
            hits_before = cache.hits
            stats = StoreStats()
            for run_id, node, port, index in keys:
                cache.find_xform_by_output(run_id, node, port, index, stats)
            assert cache.hits == hits_before + len(keys)
            assert stats.queries == 0
        finally:
            store.close()

    def test_mixed_batch_fetches_only_misses(self):
        flow, store, run_ids = populated()
        try:
            cache = TraceReadCache(store)
            keys = keys_for(store)
            half = keys[: len(keys) // 2]
            cache.find_xform_inputs_matching_many(half)
            stats = StoreStats()
            cache.find_xform_inputs_matching_many(keys, stats)
            # Only the cold half hit the store, in one chunked batch.
            assert stats.batch_keys == len(keys) - len(half)
            assert stats.queries >= 1
        finally:
            store.close()

    def test_generation_bump_invalidates_batched_entries(self):
        flow, store, run_ids = populated()
        try:
            cache = TraceReadCache(store)
            keys = keys_for(store)
            cache.find_xform_inputs_matching_many(keys)
            run0_keys = [k for k in keys if k[0] == run_ids[0]]
            store.bump_run_generation(run_ids[0])
            stats = StoreStats()
            cache.find_xform_inputs_matching_many(keys, stats)
            # Exactly the bumped run's keys were refetched.
            assert stats.batch_keys == len(run0_keys)
        finally:
            store.close()

    def test_xform_inputs_many_keyed_like_single(self):
        flow, store, run_ids = populated()
        try:
            cache = TraceReadCache(store)
            rows = store._read(
                "SELECT DISTINCT run_id, event_id FROM xform_io "
                "ORDER BY event_id",
                [],
            )
            per_run = {}
            for run_id, event_id in rows:
                per_run.setdefault(run_id, []).append(event_id)
            groups = [(r, tuple(es)) for r, es in per_run.items()]
            # Warm through the single-key path...
            for run_id, event_ids in groups:
                cache.xform_inputs(run_id, list(event_ids))
            stats = StoreStats()
            answers = cache.xform_inputs_many(groups, stats)
            assert stats.queries == 0
            for run_id, event_ids in groups:
                expected = store.xform_inputs(list(event_ids))
                got = answers[(run_id, event_ids)]
                assert [b.key() for b in got] == [b.key() for b in expected]
        finally:
            store.close()

    def test_get_many_put_many_roundtrip(self):
        flow, store, run_ids = populated()
        try:
            cache = TraceReadCache(store)
            key = ("custom", run_ids[0], "A", "x", "0")
            probes = [(key, run_ids[0])]
            hits, misses = cache.get_many(probes)
            assert hits == {} and misses == [0]
            vector = store.generation_vector((run_ids[0],))
            cache.put_many([(key, vector, ("payload",))])
            hits, misses = cache.get_many(probes)
            assert hits == {0: ("payload",)} and misses == []
            store.bump_run_generation(run_ids[0])
            hits, misses = cache.get_many(probes)
            assert hits == {} and misses == [0]
        finally:
            store.close()
