"""Tests for the finding exporters (repro.analysis.sarif).

The SARIF output is validated against an embedded subset of the official
2.1.0 schema (the full OASIS schema is ~500 KB; the subset pins down the
required shape: version, tool.driver with a rule catalogue, results with
ruleId/level/message and logical locations).
"""

import json

import pytest

from repro.analysis.lint import Finding, LintConfig, lint_rules, run_lint
from repro.analysis.sarif import (
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from repro.workflow.builder import DataflowBuilder

jsonschema = pytest.importorskip("jsonschema")


#: The load-bearing subset of the SARIF 2.1.0 schema.
SARIF_SCHEMA_SUBSET = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "error",
                                                                "warning",
                                                                "note",
                                                                "none",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "error", "warning", "note", "none",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        },
                                                        "kind": {
                                                            "type": "string"
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def build_messy_flow():
    """Cycle + unbound input + unused output: a spread of severities."""
    return (
        DataflowBuilder("messy")
        .input("a", "string")
        .output("out", "string")
        .processor("P", inputs=[("x", "string")],
                   outputs=[("y", "string"), ("aux", "string")],
                   operation="identity")
        .processor("Q", inputs=[("x", "string")], outputs=[("y", "string")],
                   operation="identity")
        .arc("messy:a", "P:x")
        .arc("P:y", "messy:out")
        .build()
    )


@pytest.fixture
def findings():
    result = run_lint(build_messy_flow())
    assert result  # the fixture flow must actually be messy
    return result


class TestTextAndJson:
    def test_text_one_line_per_finding(self, findings):
        lines = render_text(findings).splitlines()
        assert len(lines) == len(findings)

    def test_text_clean_run_names_the_workflow(self):
        assert "clean" in render_text([], workflow="clean")

    def test_json_roundtrip(self, findings):
        document = json.loads(render_json(findings, workflow="messy"))
        assert document["schema"] == "repro.analysis/1"
        assert document["workflow"] == "messy"
        assert len(document["findings"]) == len(findings)
        first = document["findings"][0]
        assert set(first) == {
            "code", "rule", "severity", "message", "location",
        }


class TestSarif:
    def test_validates_against_schema_subset(self, findings):
        document = json.loads(render_sarif(findings, workflow="messy"))
        jsonschema.validate(document, SARIF_SCHEMA_SUBSET)

    def test_empty_report_still_validates(self):
        document = json.loads(render_sarif([], workflow="clean"))
        jsonschema.validate(document, SARIF_SCHEMA_SUBSET)
        assert document["runs"][0]["results"] == []

    def test_version_and_schema_uri(self, findings):
        document = json.loads(render_sarif(findings))
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in document["$schema"]

    def test_driver_carries_the_full_rule_catalogue(self, findings):
        document = json.loads(render_sarif(findings))
        driver = document["runs"][0]["tool"]["driver"]
        assert [entry["id"] for entry in driver["rules"]] == [
            entry.code for entry in lint_rules()
        ]

    def test_rule_index_points_at_the_right_rule(self, findings):
        document = json.loads(render_sarif(findings))
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_logical_locations_are_workflow_qualified(self, findings):
        document = json.loads(render_sarif(findings, workflow="messy"))
        located = [
            r for r in document["runs"][0]["results"] if "locations" in r
        ]
        assert located
        for result in located:
            name = result["locations"][0]["logicalLocations"][0][
                "fullyQualifiedName"
            ]
            assert name.startswith("messy.")

    def test_severity_maps_to_sarif_level(self):
        findings = [
            Finding("E001", "cycle", "error", "boom"),
            Finding("W002", "unbound-input", "warning", "eh"),
            Finding("W006", "unused-output", "note", "meh"),
        ]
        document = json.loads(render_sarif(findings))
        levels = [r["level"] for r in document["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]


class TestSarifEdgeCases:
    """Export paths shared with plan-lint: suppression, overrides, zero
    results, and alternate rule catalogues/driver names."""

    def test_suppressed_findings_yield_a_valid_empty_document(self):
        """Suppressing every rule still produces schema-valid SARIF."""
        config = LintConfig(suppress={code for code in ("E001", "E002",
                                                        "E003", "W001",
                                                        "W002", "W003",
                                                        "W004", "W005",
                                                        "W006")})
        findings = run_lint(build_messy_flow(), config)
        assert findings == []
        document = json.loads(render_sarif(findings, workflow="messy"))
        jsonschema.validate(document, SARIF_SCHEMA_SUBSET)
        assert document["runs"][0]["results"] == []
        # The rule catalogue stays complete even with zero results.
        assert document["runs"][0]["tool"]["driver"]["rules"]

    def test_severity_override_reaches_the_sarif_level(self):
        config = LintConfig(severities={"W002": "error"})
        findings = [
            f for f in run_lint(build_messy_flow(), config)
            if f.code == "W002"
        ]
        assert findings
        document = json.loads(render_sarif(findings))
        assert all(
            r["level"] == "error" for r in document["runs"][0]["results"]
        )

    def test_plan_rule_catalogue_swaps_in(self):
        from repro.analysis.planlint import plan_rules

        findings = [
            Finding("P001", "full-table-scan", "error", "scan!",
                    location="run_ids.all[0]"),
        ]
        document = json.loads(
            render_sarif(findings, workflow="store-schema",
                         rules=plan_rules(), tool="repro-prov-plan-lint")
        )
        jsonschema.validate(document, SARIF_SCHEMA_SUBSET)
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-prov-plan-lint"
        assert [r["id"] for r in driver["rules"]] == [
            "P001", "P002", "P003", "P004", "P005", "P006",
        ]
        result = document["runs"][0]["results"][0]
        assert driver["rules"][result["ruleIndex"]]["id"] == "P001"

    def test_empty_plan_report_is_valid_sarif(self):
        from repro.analysis.planlint import plan_rules

        document = json.loads(
            render_sarif([], workflow="store-schema", rules=plan_rules(),
                         tool="repro-prov-plan-lint")
        )
        jsonschema.validate(document, SARIF_SCHEMA_SUBSET)
        assert document["runs"][0]["results"] == []

    def test_unknown_rule_code_omits_rule_index(self):
        """A finding outside the catalogue must not emit a bogus index."""
        document = json.loads(
            render_sarif([Finding("X999", "mystery", "note", "eh")])
        )
        result = document["runs"][0]["results"][0]
        assert "ruleIndex" not in result
        jsonschema.validate(document, SARIF_SCHEMA_SUBSET)
