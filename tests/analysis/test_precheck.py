"""Tests for the lineage-query pre-checker (repro.analysis.precheck)."""

import pytest

from repro.analysis.precheck import (
    PrecheckReport,
    QueryValidationError,
    precheck_query,
    suggest_names,
    upstream_processors,
)
from repro.query.base import LineageQuery
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef

from tests.conftest import build_diamond_workflow, build_fig3_workflow


@pytest.fixture
def diamond_analysis():
    return propagate_depths(build_diamond_workflow())


def q(node, port, index=(), focus=()):
    return LineageQuery.create(node, port, index, focus)


class TestSuggestNames:
    def test_close_match_is_suggested(self):
        assert "GEN" in suggest_names("GNE", ["GEN", "A", "B", "F"])

    def test_suggestions_are_bounded(self):
        names = [f"P{i}" for i in range(10)]
        assert len(suggest_names("P", names, limit=3)) <= 3

    def test_no_match_is_empty(self):
        assert suggest_names("zzzzz", ["GEN", "A"]) == ()


class TestUpstreamProcessors:
    def test_workflow_output_sees_everything(self, diamond_analysis):
        flow = diamond_analysis.flow
        assert upstream_processors(flow, PortRef("wf", "out")) == {
            "GEN", "A", "B", "F",
        }

    def test_branch_output_sees_only_its_chain(self, diamond_analysis):
        flow = diamond_analysis.flow
        assert upstream_processors(flow, PortRef("A", "y")) == {"GEN", "A"}

    def test_source_input_port_sees_nothing(self, diamond_analysis):
        flow = diamond_analysis.flow
        assert upstream_processors(flow, PortRef("GEN", "size")) == frozenset()

    def test_fig3_partial_closure(self):
        flow = build_fig3_workflow()
        # P's inputs are fed by Q, R, and workflow inputs; Q's output only
        # by Q itself.
        assert upstream_processors(flow, PortRef("fig3", "out")) == {
            "P", "Q", "R",
        }
        assert upstream_processors(flow, PortRef("Q", "Y")) == {"Q"}


class TestVerdicts:
    def test_reachable_focus_is_viable(self, diamond_analysis):
        report = precheck_query(
            diamond_analysis, q("wf", "out", (0, 1), ("A", "B"))
        )
        assert report.is_viable
        assert report.reachable_focus == {"A", "B"}

    def test_partially_reachable_focus_is_viable(self, diamond_analysis):
        # F is NOT upstream of A:y, but A is — so the query can still
        # produce A's bindings.
        report = precheck_query(diamond_analysis, q("A", "y", (0,), ("A", "F")))
        assert report.is_viable
        assert report.reachable_focus == {"A"}

    def test_empty_focus_is_provably_empty(self, diamond_analysis):
        report = precheck_query(diamond_analysis, q("wf", "out", (0, 0)))
        assert report.is_empty
        assert "focus set is empty" in report.reasons[0]

    def test_disconnected_focus_is_provably_empty(self, diamond_analysis):
        # F consumes A's output: it is downstream, never upstream, of A:y.
        report = precheck_query(diamond_analysis, q("A", "y", (0,), ("F",)))
        assert report.is_empty
        assert report.reachable_focus == frozenset()
        assert "no dataflow path" in report.reasons[0]

    def test_sibling_branch_is_provably_empty(self, diamond_analysis):
        # B is on the other branch of the diamond; no path into A:y.
        report = precheck_query(diamond_analysis, q("A", "y", (), ("B",)))
        assert report.is_empty


class TestInvalidQueries:
    def test_unknown_node_with_suggestion(self, diamond_analysis):
        report = precheck_query(diamond_analysis, q("GNE", "list", (), ("A",)))
        assert report.is_invalid
        issue = report.issues[0]
        assert issue.kind == "unknown-node"
        assert "GEN" in issue.suggestions

    def test_unknown_port_with_suggestion(self, diamond_analysis):
        report = precheck_query(diamond_analysis, q("GEN", "lst", (), ("A",)))
        assert report.is_invalid
        issue = report.issues[0]
        assert issue.kind == "unknown-port"
        assert "list" in issue.suggestions

    def test_unknown_focus_collects_every_bad_name(self, diamond_analysis):
        report = precheck_query(
            diamond_analysis, q("wf", "out", (), ("A", "ghost", "phantom"))
        )
        assert report.is_invalid
        kinds = [issue.kind for issue in report.issues]
        assert kinds == ["unknown-focus", "unknown-focus"]

    def test_index_too_deep_is_invalid(self, diamond_analysis):
        # wf:out carries 2-deep lists; a 4-position accessor is impossible.
        report = precheck_query(
            diamond_analysis, q("wf", "out", (0, 1, 2, 3), ("A",))
        )
        assert report.is_invalid
        issue = report.issues[0]
        assert issue.kind == "index-too-deep"
        assert issue.suggestions == ("[0.1]",)

    def test_index_at_exact_depth_is_fine(self, diamond_analysis):
        report = precheck_query(
            diamond_analysis, q("wf", "out", (0, 1), ("A",))
        )
        assert not report.is_invalid

    def test_index_on_atomic_port_suggests_empty(self, diamond_analysis):
        report = precheck_query(
            diamond_analysis, q("GEN", "size", (0,), ("A",))
        )
        assert report.is_invalid
        assert report.issues[0].suggestions == ("[]",)

    def test_error_carries_the_report(self, diamond_analysis):
        report = precheck_query(diamond_analysis, q("GNE", "list", (), ("A",)))
        error = QueryValidationError(report)
        assert error.report is report
        assert "GNE" in str(error)


class TestReportRendering:
    def test_summary_shows_suggestions(self, diamond_analysis):
        report = precheck_query(diamond_analysis, q("GNE", "list", (), ("A",)))
        text = report.summary()
        assert "invalid" in text
        assert "did you mean" in text
        assert "GEN" in text

    def test_summary_shows_empty_proof(self, diamond_analysis):
        report = precheck_query(diamond_analysis, q("A", "y", (), ("F",)))
        assert "because:" in report.summary()

    def test_verdict_properties_are_exclusive(self, diamond_analysis):
        for query in (
            q("wf", "out", (), ("A",)),
            q("A", "y", (), ("F",)),
            q("ghost", "out", (), ("A",)),
        ):
            report = precheck_query(diamond_analysis, query)
            assert isinstance(report, PrecheckReport)
            flags = [report.is_invalid, report.is_empty, report.is_viable]
            assert flags.count(True) == 1
