"""Tests for the static SQL access-path analyzer (repro.analysis.planlint).

Four layers: the SQL/plan classifiers in isolation, the full catalog
analysis against the shipped schema (the "zero P001/P003" contract), the
committed ``plans.lock.json`` baseline and its drift gate (including the
index-ablation narrative the CI gate exists for), and the P005 statement
audit / PlanGuard fixtures.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import LintConfig
from repro.analysis.planlint import (
    DEFAULT_BASELINE,
    PLAN_RULES,
    PlanGuard,
    SCHEMA_TABLES,
    StatementAudit,
    _alias_map,
    analyze,
    audit_findings,
    baseline_document,
    diff_baseline,
    load_baseline,
    normalize_sql,
    plan_findings,
    plan_rules,
    seed_reference_trace,
    write_baseline,
)
from repro.provenance.capture import capture_run
from repro.provenance.store import (
    PLAN_REFERENCE_RUN,
    SQL_PRIMITIVES,
    TraceStore,
)
from repro.values.index import Index

from tests.conftest import build_diamond_workflow

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def report():
    """One full analysis of the shipped schema, shared across tests."""
    return analyze()


@pytest.fixture()
def populated_store():
    flow = build_diamond_workflow()
    store = TraceStore()
    for size in (3, 2):
        store.insert_trace(capture_run(flow, {"size": size}).trace)
    yield store
    store.close()


class TestNormalizeSql:
    def test_collapses_whitespace(self):
        assert normalize_sql("SELECT  1\n  FROM   runs") == (
            "SELECT 1 FROM runs"
        )

    def test_placeholder_groups_collapse(self):
        assert normalize_sql("x IN (?, ?, ?)") == "x IN (?*)"
        assert normalize_sql("x IN (?)") == "x IN (?*)"

    def test_values_arity_is_erased(self):
        """Chunked batch variants normalize to one template."""
        two = normalize_sql("VALUES (?,?,?),(?,?,?)")
        five = normalize_sql(
            "VALUES (?,?,?),(?,?,?),(?,?,?),(?,?,?),(?,?,?)"
        )
        assert two == five == "VALUES (?*)"

    def test_non_placeholder_groups_survive(self):
        assert normalize_sql("COUNT(*)") == "COUNT(*)"


class TestAliasMap:
    def test_bare_and_as_aliases(self):
        aliases = _alias_map(
            "SELECT 1 FROM xform_io AS t JOIN value_pool vp "
            "ON vp.value_id = t.value_id WHERE t.run_id = ?"
        )
        assert aliases["t"] == "xform_io"
        assert aliases["vp"] == "value_pool"
        assert aliases["xform_io"] == "xform_io"

    def test_keywords_are_not_aliases(self):
        aliases = _alias_map("SELECT 1 FROM runs WHERE run_id = ?")
        assert aliases == {"runs": "runs"}


class TestCatalog:
    #: Every store read primitive the analyzer must cover — the paper's
    #: Fig. 9 hot path plus the batch family and the maintenance reads.
    EXPECTED = {
        "find_xform_by_output",
        "find_xform_by_input",
        "find_xform_inputs_matching",
        "find_xform_inputs_matching_multi",
        "find_xform_inputs_matching_many",
        "find_xform_inputs_matching_compiled",
        "find_xform_by_output_many",
        "find_xform_outputs_matching_pattern",
        "find_xfer_from",
        "find_xfer_into",
        "find_xfer_into_many",
        "xform_inputs",
        "xform_outputs",
        "xform_inputs_many",
        "has_binding",
        "has_run",
        "has_indexes",
        "run_ids",
        "record_count",
        "statistics",
        "load_trace",
        "value_digest_lookup",
        "shard_run_inventory",
    }

    def test_every_primitive_is_registered(self):
        assert set(SQL_PRIMITIVES) == self.EXPECTED

    def test_batch_variants_carry_chunked_shapes(self):
        labels = {
            s.label for s in SQL_PRIMITIVES["find_xform_inputs_matching_many"].shapes
        }
        assert "chunked" in labels

    def test_every_shape_captures_statements(self, report):
        empty = [
            f"{prim.name}.{shape.label}"
            for prim in report.primitives
            for shape in prim.shapes
            if not shape.statements
        ]
        assert not empty, f"shapes captured no SQL: {empty}"

    def test_report_covers_the_whole_catalog(self, report):
        assert {p.name for p in report.primitives} == set(SQL_PRIMITIVES)


class TestShippedSchema:
    def test_no_scans_no_sorts_no_auto_indexes(self, report):
        """The acceptance bar: zero P001/P003/P004 on the shipped schema."""
        codes = {f.code for f in plan_findings(report)}
        assert "P001" not in codes
        assert "P003" not in codes
        assert "P004" not in codes

    def test_hot_path_notes_are_p002_only(self, report):
        for finding in plan_findings(report):
            assert finding.code == "P002"
            assert finding.severity == "note"

    def test_batch_join_is_classified_not_scanned(self, report):
        by_name = {p.name: p for p in report.primitives}
        batch = by_name["find_xform_inputs_matching_many"]
        accesses = [
            a
            for shape in batch.shapes
            for stmt in shape.statements
            for a in stmt.accesses
            if a.table == "xform_io"
        ]
        assert accesses
        assert all(a.path in ("covering-seek", "index-seek") for a in accesses)

    def test_distinct_btree_is_a_flag_not_a_finding(self, report):
        by_name = {p.name: p for p in report.primitives}
        flags = {
            flag
            for shape in by_name["find_xform_inputs_matching"].shapes
            for stmt in shape.statements
            for flag in stmt.flags
        }
        assert "temp-btree-distinct" in flags  # intentional dedupe pushdown

    def test_scan_ok_primitives_do_not_fire_p001(self, report):
        locations = {f.location for f in plan_findings(report)}
        assert not any(loc.startswith("run_ids.") for loc in locations)
        assert not any(loc.startswith("statistics.") for loc in locations)


class TestSeverityConfig:
    def test_override_and_suppress(self, report):
        config = LintConfig(
            severities={"P002": "error"}, suppress={"full-table-scan"}
        )
        findings = plan_findings(report, config)
        assert findings
        assert all(f.severity == "error" for f in findings)
        suppressed = plan_findings(report, LintConfig(suppress={"P002"}))
        assert suppressed == []

    def test_rule_catalogue_is_stable(self):
        assert [r.code for r in plan_rules()] == [
            "P001", "P002", "P003", "P004", "P005", "P006",
        ]
        assert plan_rules() is PLAN_RULES


class TestBaseline:
    def test_round_trip_is_drift_free(self, report, tmp_path):
        path = tmp_path / "plans.lock.json"
        write_baseline(str(path), report)
        assert diff_baseline(report, load_baseline(str(path))) == []

    def test_schema_marker_is_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/9"}))
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            load_baseline(str(path))

    def test_committed_baseline_matches_live_plans(self, report):
        """The CI gate: live plans == the committed plans.lock.json."""
        committed = REPO_ROOT / DEFAULT_BASELINE
        assert committed.exists(), (
            "plans.lock.json missing — regenerate with "
            "`repro-prov plan-lint --update-baseline`"
        )
        drift = diff_baseline(report, load_baseline(str(committed)))
        assert drift == [], "\n".join(f.render() for f in drift)

    def test_committed_baseline_names_every_primitive(self):
        committed = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
        assert set(committed["primitives"]) == set(SQL_PRIMITIVES)

    def test_detail_changes_alone_do_not_drift(self, report):
        baseline = baseline_document(report)
        for prim in baseline["primitives"].values():
            for stmts in prim["shapes"].values():
                for stmt in stmts:
                    stmt["detail"] = ["SOMETHING ELSE ENTIRELY"]
        assert diff_baseline(report, baseline) == []


class TestIndexAblationGate:
    """The narrative the gate exists for: index drops must fail CI."""

    def test_dropping_batch_index_fails_the_gate_with_drift(self):
        committed = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
        store = TraceStore()
        store._write_transaction(
            lambda c: c.execute("DROP INDEX ix_xform_io_batch")
        )
        try:
            live = analyze(store=store)
            drift = diff_baseline(live, committed)
            assert drift, "dropping ix_xform_io_batch must drift the baseline"
            assert all(f.code == "P006" and f.is_error for f in drift)
            locations = {f.location for f in drift}
            # The optimizer falls back to ix_xform_io_lookup, so the
            # drift shows up exactly where the batch index was load-bearing.
            assert any("has_binding" in loc for loc in locations)
        finally:
            store.close()

    def test_dropping_the_fallback_too_degrades_to_full_scans(self):
        store = TraceStore()
        store._write_transaction(
            lambda c: c.execute("DROP INDEX ix_xform_io_batch")
        )
        store._write_transaction(
            lambda c: c.execute("DROP INDEX ix_xform_io_lookup")
        )
        try:
            live = analyze(store=store)
            p001 = [f for f in plan_findings(live) if f.code == "P001"]
            assert p001, "losing both xform_io indexes must produce P001s"
            assert all(f.is_error for f in p001)
            assert any("xform_io" in f.message for f in p001)
        finally:
            store.close()


class TestStatementAudit:
    def test_registered_reads_pass_the_audit(self, populated_store, report):
        audit = StatementAudit()
        populated_store.set_statement_audit(audit)
        run = populated_store.run_ids()[0]
        populated_store.find_xform_inputs_matching(
            run, "A", "x", Index.of((0,))
        )
        populated_store.has_binding(run, "A", "x")
        populated_store.set_statement_audit(None)
        assert audit.selects()
        assert audit_findings(audit, templates=report.templates()) == []

    def test_unregistered_read_is_a_p005(self, populated_store, report):
        audit = StatementAudit()
        populated_store.set_statement_audit(audit)
        populated_store._read(
            "SELECT processor FROM xform_io WHERE port = 'x'"
        )
        populated_store.set_statement_audit(None)
        findings = audit_findings(audit, templates=report.templates())
        assert [f.code for f in findings] == ["P005"]
        assert findings[0].is_error
        assert "xform_io" in findings[0].message

    def test_non_trace_reads_are_ignored(self, populated_store, report):
        audit = StatementAudit()
        populated_store.set_statement_audit(audit)
        populated_store._read("SELECT 1")
        populated_store.set_statement_audit(None)
        assert audit_findings(audit, templates=report.templates()) == []


class TestPlanGuard:
    def test_capture_returns_classified_plans(self, populated_store):
        guard = PlanGuard(populated_store)
        run = populated_store.run_ids()[0]
        plans = guard.capture(
            lambda: populated_store.find_xform_by_output(
                run, "A", "y", Index.of((0,))
            )
        )
        assert len(plans) == 1
        tables = {a.table for a in plans[0].accesses}
        assert tables <= SCHEMA_TABLES

    def test_assert_indexed_requires_statements(self, populated_store):
        guard = PlanGuard(populated_store)
        with pytest.raises(AssertionError, match="captured no statements"):
            guard.assert_indexed(lambda: None)

    def test_allow_scan_of_whitelists_tables(self, populated_store):
        guard = PlanGuard(populated_store)
        guard.assert_indexed(
            lambda: populated_store.run_ids(), allow_scan_of=("runs",)
        )
        with pytest.raises(AssertionError, match="full-scan on runs"):
            guard.assert_indexed(lambda: populated_store.run_ids())


class TestReferenceSeed:
    def test_seed_is_idempotent(self):
        store = TraceStore()
        try:
            seed_reference_trace(store)
            seed_reference_trace(store)
            assert store.has_run(PLAN_REFERENCE_RUN)
            assert store.run_ids() == [PLAN_REFERENCE_RUN]
        finally:
            store.close()

    def test_analyze_on_borrowed_store_leaves_it_open(self, populated_store):
        before = set(populated_store.run_ids())
        analyze(store=populated_store)
        assert populated_store.has_run(PLAN_REFERENCE_RUN)
        assert before <= set(populated_store.run_ids())


class TestShardBackendGate:
    """Shard-local schema drift must fail the same gate: every shard is
    a full ``TraceStore``, so ``analyze(store=shard)`` applies the
    committed baseline to each shard file individually."""

    def test_shard_inventory_primitive_is_analyzed(self, report):
        by_name = {p.name: p for p in report.primitives}
        inventory = by_name["shard_run_inventory"]
        assert any(shape.statements for shape in inventory.shapes)
        # scan_ok: the reconciliation read walks the runs table by design.
        assert not any(
            f.code in ("P001", "P003")
            for f in plan_findings(report)
            if f.location.startswith("shard_run_inventory.")
        )

    def test_dropped_shard_local_index_drifts_the_baseline(self, tmp_path):
        from repro.storage import ShardedStore

        committed = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
        sharded = ShardedStore(str(tmp_path / "shards"), num_shards=3)
        try:
            shard = sharded.shards[1]
            shard._write_transaction(
                lambda c: c.execute("DROP INDEX ix_xform_io_batch")
            )
            drift = diff_baseline(analyze(store=shard), committed)
            assert drift, "a shard missing ix_xform_io_batch must drift"
            assert all(f.code == "P006" and f.is_error for f in drift)
            # Healthy siblings still match the committed plans exactly.
            assert diff_baseline(
                analyze(store=sharded.shards[0]), committed
            ) == []
            # Losing the fallback too degrades the shard to full scans.
            shard._write_transaction(
                lambda c: c.execute("DROP INDEX ix_xform_io_lookup")
            )
            p001 = [
                f for f in plan_findings(analyze(store=shard))
                if f.code == "P001"
            ]
            assert p001, "both xform_io indexes gone must raise P001"
            assert all(f.is_error for f in p001)
        finally:
            sharded.close()
