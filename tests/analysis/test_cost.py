"""Tests for the static cost-based strategy planner (repro.analysis.cost)."""

import pytest

import repro.analysis.cost as cost_module
from repro.analysis.cost import choose_strategy, explain_plan
from repro.query.base import LineageQuery
from repro.query.explain import QueryExplanation, explain
from repro.workflow.depths import propagate_depths

from tests.conftest import build_diamond_workflow


@pytest.fixture
def analysis():
    return propagate_depths(build_diamond_workflow())


def q(node, port, index=(), focus=()):
    return LineageQuery.create(node, port, index, focus)


class TestChooseStrategy:
    def test_small_focus_prefers_indexproj(self, analysis):
        # 2 plan lookups vs 2 lookups per hop over the full upstream
        # closure: INDEXPROJ wins outright.
        query = q("wf", "out", (0, 1), ("A", "B"))
        assert choose_strategy(analysis, query) == "indexproj"

    def test_choice_follows_the_estimate(self, analysis):
        query = q("wf", "out", (0, 1), ("A", "B", "F", "GEN"))
        estimate = explain(analysis, query)
        expected = (
            "indexproj"
            if estimate.indexproj_lookups <= estimate.naive_lookups
            else "naive"
        )
        assert choose_strategy(analysis, query) == expected

    def test_choice_is_stable_across_run_counts(self, analysis):
        # Both lookup counts scale linearly with the run count, so the
        # winner cannot flip with scope size.
        query = q("wf", "out", (0, 1), ("A",))
        assert choose_strategy(analysis, query, runs=1) == choose_strategy(
            analysis, query, runs=50
        )

    def test_naive_wins_when_its_estimate_is_lower(self, analysis, monkeypatch):
        # The real model never produces this (INDEXPROJ's bound dominates);
        # force crafted estimates to pin the comparator and tie-break.
        def crafted(naive, indexproj):
            def fake_explain(analysis_, query_, runs=1):
                return QueryExplanation(
                    query=query_, runs=runs,
                    indexproj_traversal_ports=0,
                    indexproj_lookups=indexproj,
                    naive_hops=naive, naive_lookups=naive,
                    recommendation="indexproj",
                )
            return fake_explain

        query = q("wf", "out", (0, 1), ("A",))
        monkeypatch.setattr(cost_module, "explain", crafted(3, 7))
        assert choose_strategy(analysis, query) == "naive"
        monkeypatch.setattr(cost_module, "explain", crafted(7, 7))
        assert choose_strategy(analysis, query) == "indexproj"  # tie-break


class TestExplainPlan:
    def test_viable_plan_is_complete(self, analysis):
        plan = explain_plan(analysis, q("wf", "out", (0, 1), ("A", "B")))
        assert plan.report.is_viable
        assert plan.cost is not None
        assert plan.chosen_strategy == "indexproj"
        assert len(plan.trace_queries) == plan.cost.indexproj_lookups
        summary = plan.summary()
        assert "auto strategy: indexproj" in summary

    def test_invalid_query_has_no_cost(self, analysis):
        plan = explain_plan(analysis, q("GNE", "list", (), ("A",)))
        assert plan.report.is_invalid
        assert plan.cost is None
        assert plan.chosen_strategy == "none"
        assert plan.trace_queries == ()
        assert "did you mean" in plan.summary()

    def test_empty_query_is_answered_statically(self, analysis):
        plan = explain_plan(analysis, q("A", "y", (0,), ("F",)))
        assert plan.report.is_empty
        assert plan.cost is not None
        assert plan.chosen_strategy == "none"
        assert "0 trace lookups" in plan.summary()

    def test_runs_scale_the_lookup_counts(self, analysis):
        query = q("wf", "out", (0, 1), ("A", "B"))
        one = explain_plan(analysis, query, runs=1)
        five = explain_plan(analysis, query, runs=5)
        assert five.cost.indexproj_lookups == 5 * one.cost.indexproj_lookups
        # The plan itself (trace-query shapes) is shared across runs.
        assert five.trace_queries == one.trace_queries
