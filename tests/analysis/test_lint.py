"""Tests for the workflow lint engine (repro.analysis.lint)."""

import pytest

from repro.analysis.lint import (
    LEGACY_CODES,
    Finding,
    LintConfig,
    lint_rules,
    rule,
    run_lint,
)
from repro.values.types import STRING
from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import Dataflow, PortRef, PortSpec, Processor

from tests.conftest import build_diamond_workflow


def codes(findings):
    return [f.code for f in findings]


def build_cyclic_flow() -> Dataflow:
    flow = Dataflow("cyc")
    for name in ("A", "B"):
        flow.add_processor(
            Processor(name, [PortSpec("x", STRING)],
                      [PortSpec("y", STRING)], operation="identity")
        )
    flow.add_arc(PortRef("A", "y"), PortRef("B", "x"))
    flow.add_arc(PortRef("B", "y"), PortRef("A", "x"))
    return flow


class TestRegistry:
    def test_all_builtin_rules_are_registered(self):
        assert codes(()) == []
        assert [entry.code for entry in lint_rules()] == [
            "E001", "E002", "E003",
            "W001", "W002", "W003", "W004", "W005", "W006",
        ]

    def test_rule_metadata_is_complete(self):
        for entry in lint_rules():
            assert entry.slug
            assert entry.description
            assert entry.default_severity in ("error", "warning", "note")

    def test_duplicate_code_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("E001", "again", "error", "clash")(lambda context: ())

    def test_unknown_severity_is_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            rule("X999", "bogus", "fatal", "nope")

    def test_legacy_codes_all_exist(self):
        registered = {entry.code for entry in lint_rules()}
        assert set(LEGACY_CODES) <= registered


class TestRunLint:
    def test_clean_workflow_has_no_findings(self):
        assert run_lint(build_diamond_workflow()) == []

    def test_only_filter_by_code_and_slug(self):
        flow = build_cyclic_flow()
        assert codes(run_lint(flow, only=["E001"])) == ["E001"]
        assert codes(run_lint(flow, only=["cycle"])) == ["E001"]

    def test_findings_are_sorted_errors_first(self):
        flow = build_cyclic_flow()
        findings = run_lint(flow)
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=["error", "warning", "note"].index
        )

    def test_render_mentions_code_rule_and_location(self):
        finding = Finding("W002", "unbound-input", "warning", "msg", "P:x")
        text = finding.render()
        assert "W002" in text and "unbound-input" in text and "P:x" in text


class TestConfig:
    def test_severity_override_by_code(self):
        flow = build_cyclic_flow()
        config = LintConfig(severities={"W001": "error"})
        findings = run_lint(flow, config, only=["W001"])
        assert findings and all(f.severity == "error" for f in findings)

    def test_severity_override_by_slug(self):
        flow = build_cyclic_flow()
        config = LintConfig(severities={"unreachable": "note"})
        findings = run_lint(flow, config, only=["W001"])
        assert findings and all(f.severity == "note" for f in findings)

    def test_unknown_override_level_raises(self):
        config = LintConfig(severities={"W001": "fatal"})
        with pytest.raises(ValueError, match="unknown severity"):
            run_lint(build_cyclic_flow(), config)

    def test_suppress_by_code(self):
        flow = build_cyclic_flow()
        config = LintConfig(suppress={"W001"})
        assert "W001" not in codes(run_lint(flow, config))

    def test_suppress_by_slug(self):
        flow = build_cyclic_flow()
        config = LintConfig(suppress={"cycle"})
        assert "E001" not in codes(run_lint(flow, config))


class TestTotality:
    def test_cycle_still_reports_reachability(self):
        findings = run_lint(build_cyclic_flow())
        assert "E001" in codes(findings)
        assert codes(findings).count("W001") == 2

    def test_nodes_downstream_of_cycle_are_skipped_not_crashed(self):
        flow = build_cyclic_flow()
        flow.add_processor(
            Processor("C", [PortSpec("x", STRING)],
                      [PortSpec("y", STRING)], operation="identity")
        )
        # C's input depends on the cycle: its depths are undeterminable,
        # so depth-based rules must skip it without raising.
        flow.add_arc(PortRef("A", "y"), PortRef("C", "x"))
        findings = run_lint(flow)
        assert "E001" in codes(findings)
        assert not any(f.code == "W003" and "C" in f.location for f in findings)

    def test_self_loop_is_a_cycle(self):
        flow = Dataflow("selfy")
        flow.add_processor(
            Processor("P", [PortSpec("x", STRING)],
                      [PortSpec("y", STRING)], operation="identity")
        )
        flow.add_arc(PortRef("P", "y"), PortRef("P", "x"))
        assert "E001" in codes(run_lint(flow))


class TestDepthRules:
    def test_w003_negative_mismatch(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "list(string)")
            .processor("P", inputs=[("x", "list(string)")],
                       outputs=[("y", "list(string)")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        findings = run_lint(flow, only=["W003"])
        assert codes(findings) == ["W003"]
        assert findings[0].location == "P:x"
        assert "delta_s = -1" in findings[0].message

    def test_e003_dot_conflict(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .input("b", "list(list(string))")
            .output("out", "list(list(string))")
            .processor("P",
                       inputs=[("x", "string"), ("y", "string")],
                       outputs=[("z", "string")],
                       operation="concat_pair", iteration="dot")
            .arc("wf:a", "P:x")
            .arc("wf:b", "P:y")
            .arc("P:z", "wf:out")
            .build()
        )
        findings = run_lint(flow, only=["E003"])
        assert codes(findings) == ["E003"]
        assert findings[0].location == "P"

    def test_w004_fanout_at_threshold(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(list(list(string)))")
            .output("out", "list(list(list(string)))")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        findings = run_lint(flow, only=["W004"])
        assert codes(findings) == ["W004"]
        assert "d^3" in findings[0].message

    def test_w004_respects_configured_threshold(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(list(list(string)))")
            .output("out", "list(list(list(string)))")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        config = LintConfig(fanout_levels=4)
        assert run_lint(flow, config, only=["W004"]) == []


class TestStructuralRules:
    def test_w005_shadowed_arc(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .output("out", "list(list(string))")
            .processor("F",
                       inputs=[("x", "string"), ("y", "string")],
                       outputs=[("z", "string")],
                       operation="concat_pair")
            .arc("wf:a", "F:x")
            .arc("wf:a", "F:y")
            .arc("F:z", "wf:out")
            .build()
        )
        findings = run_lint(flow, only=["W005"])
        assert codes(findings) == ["W005"]
        assert "wf:a" in findings[0].message

    def test_w006_unused_output(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string"), ("aux", "string")],
                       operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        findings = run_lint(flow, only=["W006"])
        assert codes(findings) == ["W006"]
        assert findings[0].location == "P:aux"

    def test_diamond_fanout_is_not_shadowed(self):
        # GEN:list feeds A and B — different processors, not the same one.
        assert run_lint(build_diamond_workflow(), only=["W005"]) == []
