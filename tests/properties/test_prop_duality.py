"""Property: lineage and impact are dual traversals.

If binding ``b`` appears in the lineage of output binding ``o`` (with
``b``'s processor in focus), then ``o`` appears in the impact of ``b``
(with ``o``'s processor in focus) — the backward and forward readings of
the same provenance paths must agree on reachability.  This cross-checks
the two traversal directions (and their granularity-matching rules)
against each other on randomized workflows.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.graph import reference_impact, reference_lineage

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)

seeds = st.integers(min_value=0, max_value=10_000)


class TestDuality:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_lineage_members_see_the_output_in_their_impact(self, seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 200)
        captured = run_random_case(case)
        trace = captured.trace
        all_processors = [p.name for p in case.flow.processors]
        # Sample a handful of events to keep each example fast.
        for event in trace.xforms[:8]:
            for output in event.outputs:
                lineage = reference_lineage(
                    trace, output.node, output.port, output.index,
                    all_processors,
                )
                for binding in lineage:
                    impact = reference_impact(
                        trace, binding.node, binding.port, binding.index,
                        [output.node],
                    )
                    assert output.key() in {b.key() for b in impact}, (
                        f"seed={seed}: {binding} in lin({output}) but "
                        f"{output} not in imp({binding})"
                    )

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_impact_members_see_the_input_in_their_lineage(self, seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 200)
        captured = run_random_case(case)
        trace = captured.trace
        all_processors = [p.name for p in case.flow.processors]
        for event in trace.xforms[:8]:
            for input_binding in event.inputs:
                impact = reference_impact(
                    trace, input_binding.node, input_binding.port,
                    input_binding.index, all_processors,
                )
                for output in impact:
                    lineage = reference_lineage(
                        trace, output.node, output.port, output.index,
                        [input_binding.node],
                    )
                    assert input_binding.key() in {
                        b.key() for b in lineage
                    }, (
                        f"seed={seed}: {output} in imp({input_binding}) but "
                        f"{input_binding} not in lin({output})"
                    )
