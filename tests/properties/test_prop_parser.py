"""Property: the query text notation round-trips for arbitrary queries."""

from hypothesis import given, strategies as st

from repro.query.base import LineageQuery
from repro.query.parser import format_query, parse_query

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_/",
    min_size=1,
    max_size=12,
)
indices = st.lists(st.integers(min_value=0, max_value=999), max_size=5)
queries = st.builds(
    LineageQuery.create,
    node=names,
    port=names,
    index=indices,
    focus=st.lists(names, max_size=4),
)


class TestParserRoundtrip:
    @given(queries)
    def test_format_then_parse_is_identity(self, query):
        assert parse_query(format_query(query)) == query

    @given(queries)
    def test_str_notation_parses_to_same_query(self, query):
        assert parse_query(str(query)) == query

    @given(queries)
    def test_format_is_deterministic(self, query):
        assert format_query(query) == format_query(query)
