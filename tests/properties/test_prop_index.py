"""Property-based tests for Index (repro.values.index)."""

from hypothesis import given, strategies as st

from repro.values.index import Index

positions = st.lists(st.integers(min_value=0, max_value=50), max_size=6)
indices = positions.map(Index.of)


class TestCodecProperties:
    @given(indices)
    def test_encode_decode_roundtrip(self, index):
        assert Index.decode(index.encode()) == index

    @given(indices, indices)
    def test_encoding_is_injective_on_distinct(self, left, right):
        assert (left.encode() == right.encode()) == (left == right)


class TestConcatenationProperties:
    @given(indices, indices, indices)
    def test_concat_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(indices)
    def test_empty_is_identity(self, index):
        assert index + Index() == index
        assert Index() + index == index

    @given(indices, indices)
    def test_concat_length(self, a, b):
        assert len(a + b) == len(a) + len(b)

    @given(indices, indices)
    def test_concat_starts_with_left(self, a, b):
        assert (a + b).starts_with(a)


class TestSliceProperties:
    @given(indices, st.data())
    def test_slice_concat_reconstructs(self, index, data):
        cut = data.draw(st.integers(min_value=0, max_value=len(index)))
        left = index.head(cut)
        right = index.tail_from(cut)
        assert left + right == index

    @given(indices, st.data())
    def test_slice_is_contiguous_fragment(self, index, data):
        start = data.draw(st.integers(min_value=0, max_value=len(index)))
        length = data.draw(st.integers(min_value=0, max_value=len(index) - start))
        fragment = index.slice(start, length)
        assert fragment.path == index.path[start : start + length]


class TestOrderingProperties:
    @given(indices, indices)
    def test_total_order_consistency(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(indices, indices)
    def test_prefix_implies_le_in_path_order(self, a, b):
        if b.starts_with(a):
            assert a <= b
