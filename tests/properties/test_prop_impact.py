"""Property: forward (impact) strategies agree on random workflows.

The forward mirror of tests/properties/test_prop_agreement.py: for random
dataflows, inputs, start bindings, and focus sets, the extensional
reference traversal, the database-backed naive forward traversal, and the
pattern-based intensional engine must return the same output-binding
sets.
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.graph import reference_impact
from repro.provenance.store import TraceStore
from repro.query.impact import (
    ImpactQuery,
    IndexProjImpactEngine,
    NaiveImpactEngine,
)
from repro.values import nested
from repro.values.index import Index
from repro.workflow.model import PortRef

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)

seeds = st.integers(min_value=0, max_value=10_000)


def random_start(case, captured, rng: random.Random):
    """A random *upstream-ish* binding: workflow inputs or processor
    inputs/outputs that actually carried values."""
    flow = case.flow
    candidates = [(flow.name, p.name) for p in flow.inputs]
    for processor in flow.processors:
        for port in processor.inputs + processor.outputs:
            candidates.append((processor.name, port.name))
    rng.shuffle(candidates)
    for node, port in candidates:
        value = captured.result.port_values.get(PortRef(node, port))
        if value is None:
            continue
        leaves = list(nested.enumerate_leaves(value))
        if leaves:
            leaf_index, _ = rng.choice(leaves)
            cut = rng.randint(0, len(leaf_index))
            index = Index.of(list(leaf_index)[:cut])
        else:
            index = Index()
        return node, port, index
    return flow.name, flow.inputs[0].name, Index()


class TestImpactAgreement:
    @settings(max_examples=50, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=99))
    def test_three_way_agreement(self, seed, query_seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 250)
        captured = run_random_case(case)
        rng = random.Random(query_seed * 6271 + seed)
        node, port, index = random_start(case, captured, rng)
        focus_pool = list(case.flow.processor_names)
        focus = rng.sample(focus_pool, rng.randint(0, len(focus_pool)))
        query = ImpactQuery.create(node, port, index, focus)

        reference = reference_impact(
            captured.trace, node, port, index, focus
        )
        reference_keys = frozenset(b.key() for b in reference)

        with TraceStore() as store:
            store.insert_trace(captured.trace)
            naive = NaiveImpactEngine(store).impact(captured.run_id, query)
            indexproj = IndexProjImpactEngine(store, case.flow).impact(
                captured.run_id, query
            )

        assert naive.binding_keys() == reference_keys, (
            f"seed={seed} naive impact disagrees on {query}"
        )
        assert indexproj.binding_keys() == reference_keys, (
            f"seed={seed} pattern impact disagrees on {query}"
        )
