"""Property: compiled execution is byte-identical to interpreted execution.

For random workflows, random queries, random chunk sizes, the cache
stack warm or cold, and single-file or sharded backends, the compiled
path (``repro.query.compiled`` — frozen key grids + prepared SQL
programs, docs/PERFORMANCE.md) must produce exactly the bindings —
keys *and* JSON-encoded values, per run — of the interpreted INDEXPROJ
path.  Registry reuse rides along: within one engine the second
compiled call must be a plan hit, and the answer must not change
between the cold (compile) and warm (registry) executions.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.service import ProvenanceService
from repro.storage import ShardedStore

from tests.conftest import estimated_instances, make_random_workflow
from tests.properties.conftest import canonical, query_pool

seeds = st.integers(min_value=0, max_value=10_000)
chunk_sizes = st.integers(min_value=1, max_value=40)
shard_counts = st.sampled_from([1, 2, 4, 7])


def _capture_runs(case, count):
    return [
        capture_run(case.flow, case.inputs, run_id=f"run-{i}")
        for i in range(count)
    ]


def _fill(store, captured):
    for cap in captured:
        store.insert_trace(cap.trace)


class TestCompiledEqualsInterpreted:
    @settings(max_examples=50, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=2), chunk_sizes)
    def test_differential_engine(self, seed, query_ord, chunk):
        """Engine-level: compiled == interpreted == batched, any chunk
        size, no caches; the warm repeat hits the plan registry."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[query_ord]

        with ProvenanceService(cache=False) as service:
            service.register_workflow(case.flow)
            for _ in range(3):
                service.run(case.flow.name, case.inputs)
            scope = service.runs_of(case.flow.name)
            engine = IndexProjEngine(service.store, case.flow)
            interpreted = engine.lineage_multirun(scope, query)
            batched = engine.lineage_multirun_batched(
                scope, query, chunk_size=chunk
            )
            cold = engine.lineage_multirun_compiled(
                scope, query, chunk_size=chunk
            )
            warm = engine.lineage_multirun_compiled(
                scope, query, chunk_size=chunk
            )
            label = f"seed={seed} chunk={chunk} query={query}"
            assert canonical(cold) == canonical(interpreted), label
            assert canonical(warm) == canonical(interpreted), label
            assert canonical(batched) == canonical(interpreted), label
            stats = engine.plan_registry.stats()
            assert stats["hits"] >= 1 and stats["misses"] >= 1
            # Compiled collapses round-trips at least as well as batched.
            assert cold.sql_queries <= batched.sql_queries

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_differential_service_with_caches(self, seed):
        """Service-level: compiled default == interpreted opt-out through
        the cache stack, cold and warm; the warm repeat costs zero
        store round-trips."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=True) as service:
            service.register_workflow(case.flow)
            for _ in range(2):
                service.run(case.flow.name, case.inputs)
            reference = service.lineage(
                query, compiled=False, precheck=False, cache=False
            )
            cold = service.lineage(query, precheck=False, cache=False)
            assert canonical(cold) == canonical(reference), f"seed={seed}"
            # Warm repeat through the trace cache: the compiled path
            # probes byte-identical cache keys, so it is served without
            # any store round-trip.
            warm = service.lineage(query, precheck=False, cache=False)
            assert canonical(warm) == canonical(reference)
            assert warm.sql_queries == 0
            # And the interpreted path shares that warmth back.
            shared = service.lineage(
                query, compiled=False, precheck=False, cache=False
            )
            assert canonical(shared) == canonical(reference)
            assert shared.sql_queries == 0

    @settings(max_examples=20, deadline=None)
    @given(seeds, shard_counts)
    def test_differential_sharded(self, seed, shards):
        """The scatter-gathered compiled grid over a sharded store equals
        the single-file interpreted reference."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]
        captured = _capture_runs(case, 4)
        scope = [cap.run_id for cap in captured]

        with TraceStore() as single, ShardedStore(num_shards=shards) as shd:
            _fill(single, captured)
            _fill(shd, captured)
            reference = IndexProjEngine(single, case.flow).lineage_multirun(
                scope, query
            )
            compiled = IndexProjEngine(
                shd, case.flow
            ).lineage_multirun_compiled(scope, query)
            assert canonical(compiled) == canonical(reference), (
                f"seed={seed} shards={shards}"
            )

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_chunk_boundary_straddle(self, seed):
        """chunk = pairs - 1 forces a 2-statement split mid-grid; the
        demultiplexed answer must not change."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=False) as service:
            service.register_workflow(case.flow)
            for _ in range(4):
                service.run(case.flow.name, case.inputs)
            scope = service.runs_of(case.flow.name)
            engine = IndexProjEngine(service.store, case.flow)
            reference = engine.lineage_multirun(scope, query)
            wide = engine.lineage_multirun_compiled(scope, query)
            keys = wide.aggregate_stats().batch_keys
            assume(keys >= 2)
            straddling = engine.lineage_multirun_compiled(
                scope, query, chunk_size=max(1, keys - 1)
            )
            assert canonical(straddling) == canonical(reference)
            assert canonical(wide) == canonical(reference)

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_deleted_run_in_mixed_scope(self, seed):
        """Pairs of a deleted run inside the compiled grid resolve to
        empty answers without disturbing the surviving runs'; the
        delete's generation bump forces a recompile first."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=False) as service:
            service.register_workflow(case.flow)
            for _ in range(3):
                service.run(case.flow.name, case.inputs)
            scope = service.runs_of(case.flow.name)
            engine = IndexProjEngine(service.store, case.flow)
            engine.lineage_multirun_compiled(scope, query)  # warm the plan
            victim = scope[1]
            service.store.delete_run(victim)
            interpreted = engine.lineage_multirun(scope, query)
            compiled = engine.lineage_multirun_compiled(scope, query)
            assert canonical(compiled) == canonical(interpreted)
            assert compiled.per_run[victim].bindings == []
            assert engine.plan_registry.stats()["invalidations"] >= 1
