"""Property-based tests for random iteration-strategy trees.

Generates random combinator trees (cross/dot, arbitrary nesting) together
with *consistent* values — dot groups need shape-compatible operands, so
dimensions are assigned top-down: a dot node fixes one dimension vector
for all of its iterating children, a cross node partitions its dimensions
among children contiguously.  The invariants then mirror Prop. 1 in its
generalized form:

* the evaluation level equals the length of the root dimension vector;
* the instance count equals the product of the dimensions;
* every port's recorded fragment equals the contiguous slice of ``q``
  that the static layout (``fragment_offsets``) predicts — which is
  exactly what INDEXPROJ's projection consumes;
* the assembled output's element at ``q`` is that instance's output.
"""

import random
from typing import Any, Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.engine.iteration import PortValue, evaluate
from repro.strategy import fragment_offsets, node_level, parse_strategy
from repro.values import nested
from repro.values.index import Index


def random_tree_spec(rng: random.Random, ports: List[str]) -> Any:
    """A random combinator expression covering ``ports`` exactly once."""
    if len(ports) == 1:
        return ports[0]
    rng.shuffle(ports)
    cut = rng.randint(1, len(ports) - 1)
    left, right = ports[:cut], ports[cut:]
    kind = rng.choice(["cross", "dot"])
    children = []
    for chunk in (left, right):
        if len(chunk) == 1 or rng.random() < 0.4:
            children.extend(chunk) if len(chunk) == 1 else children.append(
                {rng.choice(["cross", "dot"]): [p for p in chunk]}
            )
        else:
            children.append(random_tree_spec(rng, chunk))
    return {kind: children}


def assign_dimensions(
    spec: Any, rng: random.Random, required: Tuple[int, ...] = None
) -> Dict[str, Tuple[int, ...]]:
    """Per-port dimension vectors consistent with the tree's constraints."""
    if isinstance(spec, str):
        if required is None:
            required = tuple(
                rng.randint(1, 3) for _ in range(rng.randint(0, 2))
            )
        return {spec: required}
    kind, children = next(iter(spec.items()))
    dims: Dict[str, Tuple[int, ...]] = {}
    if kind == "cross":
        if required is None:
            for child in children:
                dims.update(assign_dimensions(child, rng))
        else:
            # Partition the required dims contiguously among children.
            cuts = sorted(
                rng.randint(0, len(required)) for _ in range(len(children) - 1)
            )
            bounds = [0] + cuts + [len(required)]
            for child, start, end in zip(children, bounds, bounds[1:]):
                dims.update(
                    assign_dimensions(child, rng, required[start:end])
                )
    else:  # dot
        if required is None:
            required = tuple(
                rng.randint(1, 3) for _ in range(rng.randint(1, 2))
            )
        iterating = rng.sample(
            range(len(children)), rng.randint(1, len(children))
        )
        for position, child in enumerate(children):
            child_dims = required if position in iterating else ()
            dims.update(assign_dimensions(child, rng, child_dims))
    return dims


def rectangular(dims: Tuple[int, ...], label: str, path: str = "") -> Any:
    if not dims:
        return f"{label}{path or '@'}"
    return [
        rectangular(dims[1:], label, f"{path}.{i}") for i in range(dims[0])
    ]


def product(dims: Tuple[int, ...]) -> int:
    result = 1
    for d in dims:
        result *= d
    return result


@st.composite
def strategy_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    port_count = rng.randint(2, 4)
    ports = [f"x{i}" for i in range(port_count)]
    spec = random_tree_spec(rng, list(ports))
    dims = assign_dimensions(spec, rng)
    values = [
        PortValue(port, rectangular(dims[port], port), len(dims[port]))
        for port in ports
    ]
    return spec, ports, dims, values


class TestRandomStrategyTrees:
    @settings(max_examples=80, deadline=None)
    @given(strategy_cases())
    def test_level_and_instance_count(self, case):
        spec, ports, dims, values = case
        node = parse_strategy(spec, ports)
        deltas = {p.name: p.delta for p in values}
        level = node_level(node, deltas)
        result = evaluate(
            lambda args: {"y": repr(sorted(args.items()))}, values, ["y"],
            strategy=spec,
        )
        assert result.level == level
        for instance in result.instances:
            assert len(instance.q) == level
        # Instance count = product of the root dims, which we can read off
        # any full-length slice reconstruction: each instance's q is unique.
        qs = {inst.q for inst in result.instances}
        assert len(qs) == len(result.instances)

    @settings(max_examples=80, deadline=None)
    @given(strategy_cases())
    def test_fragments_are_the_static_slices(self, case):
        spec, ports, dims, values = case
        node = parse_strategy(spec, ports)
        deltas = {p.name: p.delta for p in values}
        offsets = fragment_offsets(node, deltas)
        result = evaluate(
            lambda args: {"y": 0}, values, ["y"], strategy=spec
        )
        for instance in result.instances:
            for port in ports:
                offset, length = offsets[port]
                assert instance.fragment(port) == instance.q.slice(
                    offset, length
                ), (spec, port)

    @settings(max_examples=80, deadline=None)
    @given(strategy_cases())
    def test_arguments_are_indexed_subvalues(self, case):
        spec, ports, dims, values = case
        originals = {p.name: p.value for p in values}
        result = evaluate(
            lambda args: {"y": 0}, values, ["y"], strategy=spec
        )
        for instance in result.instances:
            for port in ports:
                assert instance.arguments[port] == nested.get_element(
                    originals[port], instance.fragment(port)
                )

    @settings(max_examples=60, deadline=None)
    @given(strategy_cases())
    def test_output_assembly(self, case):
        spec, ports, dims, values = case
        result = evaluate(
            lambda args: {"y": repr(sorted(args.items()))}, values, ["y"],
            strategy=spec,
        )
        for instance in result.instances:
            assert (
                nested.get_element(result.outputs["y"], instance.q)
                == instance.outputs["y"]
            )

    @settings(max_examples=40, deadline=None)
    @given(strategy_cases())
    def test_lineage_agreement_over_strategy_trees(self, case):
        """NI and INDEXPROJ agree on workflows using random trees."""
        spec, ports, dims, values = case
        from repro.provenance.capture import capture_run
        from repro.provenance.store import TraceStore
        from repro.query.base import LineageQuery
        from repro.query.indexproj import IndexProjEngine
        from repro.query.naive import NaiveEngine
        from repro.workflow.builder import DataflowBuilder

        builder = DataflowBuilder("wf")
        inputs = {}
        port_decls = []
        for value in values:
            text = "string"
            for _ in range(value.delta):
                text = f"list({text})"
            builder.input(f"in_{value.name}", text)
            inputs[f"in_{value.name}"] = value.value
            port_decls.append((value.name, "string"))
        builder.processor(
            "Z",
            inputs=port_decls,
            outputs=[("y", "string")],
            operation="synth_value",
            iteration=spec,
            config={"out": "y", "out_depth": 0, "salt": "Z"},
        )
        builder.output("out", "string")
        for value in values:
            builder.arc(f"wf:in_{value.name}", f"Z:{value.name}")
        builder.arc("Z:y", "wf:out")
        flow = builder.build()

        captured = capture_run(flow, inputs)
        if not captured.trace.instances_of("Z"):
            return  # zero-instance run: nothing to query
        target = captured.trace.instances_of("Z")[-1].outputs[0].index
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            query = LineageQuery.create("Z", "y", target, ["Z"])
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, flow).lineage(
                captured.run_id, query
            )
        assert naive.binding_keys() == indexproj.binding_keys(), spec
        assert {b.key(): b.value for b in naive.bindings} == {
            b.key(): b.value for b in indexproj.bindings
        }
