"""Property: cached lineage answers are byte-identical to cold execution.

For random workflows and randomized interleavings of ingests and
queries, every answer served by the service's cache stack (trace-lookup
cache + result cache, warm or cold) must equal — bindings *and*
JSON-encoded values, per run — what freshly constructed uncached engines
compute over the same store and run scope at that moment.  The
interleavings exercise the generation protocol's one hard obligation:
an ingest between two identical queries must invalidate, never serve
the pre-ingest answer for the post-ingest scope.

Hypothesis drives >= 50 distinct interleavings (each example performs
several query checks around ingest points, so the differential
comparison itself runs several hundred times).
"""

from __future__ import annotations

import random

from hypothesis import assume, given, settings, strategies as st

from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.service import ProvenanceService

from tests.conftest import estimated_instances, make_random_workflow
from tests.properties.conftest import canonical, query_pool

seeds = st.integers(min_value=0, max_value=10_000)


class TestCachedEqualsUncached:
    @settings(max_examples=50, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=999))
    def test_differential_interleaving(self, seed, plan_seed):
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        rng = random.Random(plan_seed * 7919 + seed)
        pool = query_pool(case)

        with ProvenanceService(cache=True) as service:
            service.register_workflow(case.flow)
            service.run(case.flow.name, case.inputs)
            checks = 0
            for _step in range(6):
                # The final two steps always query, so every interleaving
                # performs comparisons even if the rng rolls all-ingest.
                if _step < 4 and rng.random() < 0.35:
                    service.run(case.flow.name, case.inputs)
                    continue
                query = rng.choice(pool)
                strategy = rng.choice(["indexproj", "naive"])
                # First call may be cold or warm; the repeat is warm.
                for _attempt in range(2):
                    cached = service.lineage(
                        query, strategy=strategy, precheck=False
                    )
                    scope = service.runs_of(case.flow.name)
                    assert list(cached.per_run) == scope
                    control_engine = (
                        NaiveEngine(service.store)
                        if strategy == "naive"
                        else IndexProjEngine(service.store, case.flow)
                    )
                    control = control_engine.lineage_multirun(scope, query)
                    assert canonical(cached) == canonical(control), (
                        f"seed={seed} plan={plan_seed} step={_step} "
                        f"strategy={strategy} query={query}"
                    )
                    checks += 1
            assert checks >= 2  # every interleaving exercises the compare

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_post_ingest_invalidation(self, seed):
        """The sharpest corner explicitly: warm entry, ingest, re-query."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=True) as service:
            service.register_workflow(case.flow)
            service.run(case.flow.name, case.inputs)
            service.lineage(query, precheck=False)
            warm = service.lineage(query, precheck=False)
            assert warm.from_cache is True
            service.run(case.flow.name, case.inputs)
            after = service.lineage(query, precheck=False)
            assert after.from_cache is False
            scope = service.runs_of(case.flow.name)
            assert list(after.per_run) == scope
            control = IndexProjEngine(
                service.store, case.flow
            ).lineage_multirun(scope, query)
            assert canonical(after) == canonical(control)
            # And the new entry is immediately warm again.
            rewarmed = service.lineage(query, precheck=False)
            assert rewarmed.from_cache is True
            assert canonical(rewarmed) == canonical(control)
