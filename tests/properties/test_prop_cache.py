"""Property: cached lineage answers are byte-identical to cold execution.

For random workflows and randomized interleavings of ingests and
queries, every answer served by the service's cache stack (trace-lookup
cache + result cache, warm or cold) must equal — bindings *and*
JSON-encoded values, per run — what freshly constructed uncached engines
compute over the same store and run scope at that moment.  The
interleavings exercise the generation protocol's one hard obligation:
an ingest between two identical queries must invalidate, never serve
the pre-ingest answer for the post-ingest scope.

Hypothesis drives >= 50 distinct interleavings (each example performs
several query checks around ingest points, so the differential
comparison itself runs several hundred times).
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Tuple

from hypothesis import assume, given, settings, strategies as st

from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.service import ProvenanceService

from tests.conftest import estimated_instances, make_random_workflow

seeds = st.integers(min_value=0, max_value=10_000)


def canonical(result) -> Dict[str, List[Tuple[str, str, str, str]]]:
    """Byte-accurate identity of a multi-run answer: keys + JSON values."""
    return {
        run_id: sorted(
            (*binding.key(), json.dumps(binding.value, sort_keys=True,
                                        default=repr))
            for binding in run_result.bindings
        )
        for run_id, run_result in result.per_run.items()
    }


def query_pool(case) -> List[LineageQuery]:
    """A small pool of valid queries so interleavings repeat shapes
    (repeats are what make cache hits — and stale hits — possible)."""
    flow = case.flow
    names = list(flow.processor_names)
    pool = [
        LineageQuery.create(flow.name, flow.outputs[0].name, (), names),
        LineageQuery.create(flow.name, flow.outputs[0].name, (), names[:1]),
    ]
    last = names[-1]
    pool.append(LineageQuery.create(last, "y", (), names))
    return pool


class TestCachedEqualsUncached:
    @settings(max_examples=50, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=999))
    def test_differential_interleaving(self, seed, plan_seed):
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        rng = random.Random(plan_seed * 7919 + seed)
        pool = query_pool(case)

        with ProvenanceService(cache=True) as service:
            service.register_workflow(case.flow)
            service.run(case.flow.name, case.inputs)
            checks = 0
            for _step in range(6):
                # The final two steps always query, so every interleaving
                # performs comparisons even if the rng rolls all-ingest.
                if _step < 4 and rng.random() < 0.35:
                    service.run(case.flow.name, case.inputs)
                    continue
                query = rng.choice(pool)
                strategy = rng.choice(["indexproj", "naive"])
                # First call may be cold or warm; the repeat is warm.
                for _attempt in range(2):
                    cached = service.lineage(
                        query, strategy=strategy, precheck=False
                    )
                    scope = service.runs_of(case.flow.name)
                    assert list(cached.per_run) == scope
                    control_engine = (
                        NaiveEngine(service.store)
                        if strategy == "naive"
                        else IndexProjEngine(service.store, case.flow)
                    )
                    control = control_engine.lineage_multirun(scope, query)
                    assert canonical(cached) == canonical(control), (
                        f"seed={seed} plan={plan_seed} step={_step} "
                        f"strategy={strategy} query={query}"
                    )
                    checks += 1
            assert checks >= 2  # every interleaving exercises the compare

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_post_ingest_invalidation(self, seed):
        """The sharpest corner explicitly: warm entry, ingest, re-query."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=True) as service:
            service.register_workflow(case.flow)
            service.run(case.flow.name, case.inputs)
            service.lineage(query, precheck=False)
            warm = service.lineage(query, precheck=False)
            assert warm.from_cache is True
            service.run(case.flow.name, case.inputs)
            after = service.lineage(query, precheck=False)
            assert after.from_cache is False
            scope = service.runs_of(case.flow.name)
            assert list(after.per_run) == scope
            control = IndexProjEngine(
                service.store, case.flow
            ).lineage_multirun(scope, query)
            assert canonical(after) == canonical(control)
            # And the new entry is immediately warm again.
            rewarmed = service.lineage(query, precheck=False)
            assert rewarmed.from_cache is True
            assert canonical(rewarmed) == canonical(control)
