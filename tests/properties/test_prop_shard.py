"""Property: the sharded backend is byte-identical to the single-file one.

For random workflows, both query strategies, shard counts {1, 2, 4, 7},
batched and per-key execution, the cache stack on or off, and
interleaved ``delete_run``, a :class:`~repro.storage.ShardedStore` must
produce exactly the answer — bindings *and* JSON-encoded values, per
run — of the single-file :class:`~repro.provenance.store.TraceStore`
holding the same traces.  The same captured traces are inserted into
both stores so the comparison is a pure storage-backend differential.

Shard-map consistency rides along: after every interleaved delete both
backends must report the same ``run_ids()`` in the same (global ingest)
order, and a persisted shard directory must answer identically after a
close/reopen cycle.
"""

from __future__ import annotations

import random

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.service import ProvenanceService
from repro.storage import ShardedStore

from tests.conftest import estimated_instances, make_random_workflow
from tests.properties.conftest import canonical, query_pool

seeds = st.integers(min_value=0, max_value=10_000)
shard_counts = st.sampled_from([1, 2, 4, 7])
strategies = st.sampled_from(["indexproj", "naive"])
chunk_sizes = st.integers(min_value=1, max_value=40)


def _capture_runs(case, count):
    return [
        capture_run(case.flow, case.inputs, run_id=f"run-{i}")
        for i in range(count)
    ]


def _fill(store, captured):
    for cap in captured:
        store.insert_trace(cap.trace)


def _engine(strategy, store, flow):
    if strategy == "naive":
        return NaiveEngine(store)
    return IndexProjEngine(store, flow)


class TestShardedEqualsSingleFile:
    @settings(max_examples=30, deadline=None)
    @given(seeds, shard_counts, strategies,
           st.integers(min_value=0, max_value=2))
    def test_differential_engines(self, seed, shards, strategy, query_ord):
        """Engine level, no caches: looped and batched execution over the
        sharded store both equal the single-file looped reference."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[query_ord]
        captured = _capture_runs(case, 4)
        scope = [cap.run_id for cap in captured]

        with TraceStore() as single, ShardedStore(num_shards=shards) as shd:
            _fill(single, captured)
            _fill(shd, captured)
            assert shd.run_ids() == single.run_ids()
            reference = _engine(strategy, single, case.flow).lineage_multirun(
                scope, query
            )
            engine = _engine(strategy, shd, case.flow)
            looped = engine.lineage_multirun(scope, query)
            batched = engine.lineage_multirun_batched(scope, query)
            assert canonical(looped) == canonical(reference), (
                f"seed={seed} shards={shards} strategy={strategy}"
            )
            assert canonical(batched) == canonical(reference), (
                f"seed={seed} shards={shards} strategy={strategy} (batched)"
            )

    @settings(max_examples=20, deadline=None)
    @given(seeds, shard_counts, strategies, chunk_sizes)
    def test_differential_batched_chunks(self, seed, shards, strategy, chunk):
        """Any chunk size: the scatter-gathered VALUES-join grid still
        demultiplexes to the single-file answer."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]
        captured = _capture_runs(case, 5)
        scope = [cap.run_id for cap in captured]

        with TraceStore() as single, ShardedStore(num_shards=shards) as shd:
            _fill(single, captured)
            _fill(shd, captured)
            reference = _engine(strategy, single, case.flow).lineage_multirun(
                scope, query
            )
            batched = _engine(strategy, shd, case.flow).lineage_multirun_batched(
                scope, query, chunk_size=chunk
            )
            assert canonical(batched) == canonical(reference), (
                f"seed={seed} shards={shards} strategy={strategy} chunk={chunk}"
            )

    @settings(max_examples=20, deadline=None)
    @given(seeds, shard_counts, strategies)
    def test_differential_service_with_caches(self, seed, shards, strategy):
        """Service level, cache stack on: cold, batched and warm answers
        over a sharded backend equal the single-file reference, and the
        warm repeat costs zero store round-trips (the composed per-shard
        generation vector validates without SQL)."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]
        captured = _capture_runs(case, 3)

        with ProvenanceService(cache=True) as single_svc, ProvenanceService(
            store=ShardedStore(num_shards=shards), cache=True
        ) as shard_svc:
            for svc in (single_svc, shard_svc):
                svc.register_workflow(case.flow)
                _fill(svc.store, captured)
            reference = single_svc.lineage(
                query, strategy=strategy, precheck=False, cache=False
            )
            for batch in (False, True):
                cold = shard_svc.lineage(
                    query, strategy=strategy, batch=batch,
                    precheck=False, cache=False,
                )
                assert canonical(cold) == canonical(reference), (
                    f"seed={seed} shards={shards} strategy={strategy} "
                    f"batch={batch}"
                )
            warm = shard_svc.lineage(
                query, strategy=strategy, precheck=False, cache=False
            )
            assert canonical(warm) == canonical(reference)
            assert warm.sql_queries == 0

    @settings(max_examples=20, deadline=None)
    @given(seeds, shard_counts, st.integers(min_value=0, max_value=999))
    def test_interleaved_deletes(self, seed, shards, plan_seed):
        """Random ingest/delete/query interleavings: the shard map stays
        consistent (same run_ids, same order) and every answer matches,
        including scopes that still name deleted runs."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        rng = random.Random(plan_seed * 6151 + seed)
        pool = query_pool(case)

        with TraceStore() as single, ShardedStore(num_shards=shards) as shd:
            live = []
            next_id = 0
            for _ in range(3):
                cap = capture_run(
                    case.flow, case.inputs, run_id=f"run-{next_id}"
                )
                next_id += 1
                single.insert_trace(cap.trace)
                shd.insert_trace(cap.trace)
                live.append(cap.run_id)
            checks = 0
            # Scope intentionally keeps deleted runs: their keys must
            # resolve to empty answers on both backends.
            scope = list(live)
            for step in range(6):
                roll = rng.random()
                if step < 4 and roll < 0.25 and len(live) > 1:
                    victim = rng.choice(live)
                    live.remove(victim)
                    single.delete_run(victim)
                    shd.delete_run(victim)
                elif step < 4 and roll < 0.45:
                    cap = capture_run(
                        case.flow, case.inputs, run_id=f"run-{next_id}"
                    )
                    next_id += 1
                    single.insert_trace(cap.trace)
                    shd.insert_trace(cap.trace)
                    live.append(cap.run_id)
                    scope.append(cap.run_id)
                assert shd.run_ids() == single.run_ids(), (
                    f"seed={seed} shards={shards} plan={plan_seed} "
                    f"step={step}: shard map diverged"
                )
                query = rng.choice(pool)
                strategy = rng.choice(["indexproj", "naive"])
                reference = _engine(
                    strategy, single, case.flow
                ).lineage_multirun(scope, query)
                answer = _engine(
                    strategy, shd, case.flow
                ).lineage_multirun_batched(scope, query)
                assert canonical(answer) == canonical(reference), (
                    f"seed={seed} shards={shards} plan={plan_seed} "
                    f"step={step} strategy={strategy}"
                )
                checks += 1
            assert checks >= 2

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, shards=shard_counts)
    def test_reopen_persistence(self, tmp_path_factory, seed, shards):
        """Close/reopen a shard directory (with one interleaved delete):
        the reopened store answers exactly like the single-file one."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]
        captured = _capture_runs(case, 4)
        scope = [cap.run_id for cap in captured]
        root = tmp_path_factory.mktemp("shards")

        with TraceStore() as single:
            _fill(single, captured)
            single.delete_run(scope[1])
            with ShardedStore(
                str(root / "store"), num_shards=shards
            ) as shd:
                _fill(shd, captured)
                shd.delete_run(scope[1])
            with ShardedStore(str(root / "store")) as reopened:
                assert reopened.num_shards == shards
                assert reopened.run_ids() == single.run_ids()
                reference = IndexProjEngine(
                    single, case.flow
                ).lineage_multirun(scope, query)
                answer = IndexProjEngine(
                    reopened, case.flow
                ).lineage_multirun_batched(scope, query)
                assert canonical(answer) == canonical(reference)
