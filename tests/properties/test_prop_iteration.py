"""Property-based tests of the iteration semantics — Prop. 1 in particular.

Prop. 1 (index projection): for every *xform* event produced by an
evaluation under Def. 3,

1. ``|p_i| = delta_s(X_i)`` for each input index fragment, and
2. ``q = p_1 · p_2 · ... · p_n`` (concatenation in port order),

independently of the values involved.  These tests generate random port
configurations (values of random depth, random mismatches) and check the
invariants on every emitted instance.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.iteration import PortValue, evaluate
from repro.values import nested
from repro.values.index import Index

atoms = st.text(
    alphabet="abcdefgh", min_size=1, max_size=3
) | st.integers(min_value=0, max_value=99)


def values_of_depth(depth: int):
    strategy = atoms
    for _ in range(depth):
        strategy = st.lists(strategy, min_size=1, max_size=3)
    return strategy


@st.composite
def port_configurations(draw):
    """1-3 ports, each with a value of depth >= its mismatch (0-2)."""
    count = draw(st.integers(min_value=1, max_value=3))
    ports = []
    total_level = 0
    for i in range(count):
        delta = draw(st.integers(min_value=0, max_value=2))
        if total_level + delta > 4:
            delta = 0
        total_level += delta
        extra = draw(st.integers(min_value=0, max_value=1))
        value = draw(values_of_depth(delta + extra))
        ports.append(PortValue(f"x{i}", value, delta))
    return ports


def run_eval(ports):
    def operation(args):
        return {"y": repr(sorted(args.items()))}

    return evaluate(operation, ports, ["y"])


class TestProp1:
    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_fragment_lengths_equal_mismatch(self, ports):
        result = run_eval(ports)
        deltas = {p.name: max(p.delta, 0) for p in ports}
        for instance in result.instances:
            for port_name, fragment in instance.fragments:
                assert len(fragment) == deltas[port_name]

    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_q_is_concatenation_in_port_order(self, ports):
        result = run_eval(ports)
        for instance in result.instances:
            concatenated = Index()
            for _, fragment in instance.fragments:
                concatenated = concatenated + fragment
            assert concatenated == instance.q

    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_q_length_equals_total_level(self, ports):
        result = run_eval(ports)
        for instance in result.instances:
            assert len(instance.q) == result.level

    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_arguments_are_the_indexed_subvalues(self, ports):
        """Each instance's argument on port X_i is exactly value[p_i]."""
        result = run_eval(ports)
        originals = {p.name: (p.value, p.delta) for p in ports}
        for instance in result.instances:
            for port_name, fragment in instance.fragments:
                value, delta = originals[port_name]
                if delta >= 0:
                    assert instance.arguments[port_name] == nested.get_element(
                        value, fragment
                    )

    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_output_element_at_q_is_instance_output(self, ports):
        """The assembled output's element at q is that instance's result."""
        result = run_eval(ports)
        for instance in result.instances:
            assert (
                nested.get_element(result.outputs["y"], instance.q)
                == instance.outputs["y"]
            )

    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_instance_count_is_product_of_iterated_sizes(self, ports):
        result = run_eval(ports)
        expected = 1
        for port in ports:
            if port.delta > 0:
                expected *= len(list(nested.iter_at_depth(port.value, port.delta)))
        assert len(result.instances) == expected

    @settings(max_examples=60, deadline=None)
    @given(port_configurations())
    def test_instance_indices_unique(self, ports):
        result = run_eval(ports)
        qs = [instance.q for instance in result.instances]
        assert len(qs) == len(set(qs))


class TestDotProp:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=2),
        st.data(),
    )
    def test_dot_shares_single_fragment(self, length, delta, data):
        def deep_list(levels):
            if levels == 0:
                return data.draw(atoms)
            return [deep_list(levels - 1) for _ in range(length)]

        ports = [
            PortValue("a", deep_list(delta), delta),
            PortValue("b", deep_list(delta), delta),
        ]
        result = evaluate(
            lambda args: {"y": 0}, ports, ["y"], strategy="dot"
        )
        assert len(result.instances) == length ** delta
        for instance in result.instances:
            assert instance.fragment("a") == instance.q
            assert instance.fragment("b") == instance.q
            assert len(instance.q) == delta
