"""Property: static depth propagation (Alg. 1) predicts runtime depths.

Under assumptions 1 and 2 of Section 3.1, ``depth(P:X)`` computed on the
static graph must equal the actual nesting depth of the value observed on
that port at run time — that is the soundness claim that lets INDEXPROJ
ignore the trace while projecting indices.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.values import nested
from repro.workflow.depths import propagate_depths

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)

seeds = st.integers(min_value=0, max_value=10_000)


class TestStaticDepthSoundness:
    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_runtime_depths_match_static(self, seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 300)
        captured = run_random_case(case)
        analysis = propagate_depths(case.flow)
        for ref, value in captured.result.port_values.items():
            if value is None:
                continue  # unconnected input without default
            assert nested.depth(value) == analysis.depth_of(ref), str(ref)

    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_instance_index_length_matches_level(self, seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 300)
        captured = run_random_case(case)
        analysis = propagate_depths(case.flow)
        for event in captured.trace.xforms:
            level = analysis.iteration_level(event.processor)
            for binding in event.outputs:
                assert len(binding.index) == level

    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_trace_fragments_match_static_layout(self, seed):
        """Prop. 1 end to end: recorded fragment lengths equal the static
        mismatch of each port, on arbitrary generated workflows."""
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 300)
        captured = run_random_case(case)
        analysis = propagate_depths(case.flow)
        for event in captured.trace.xforms:
            layout = {
                f.port: f.length
                for f in analysis.fragment_layout(event.processor)
            }
            for binding in event.inputs:
                assert len(binding.index) == layout[binding.port]
