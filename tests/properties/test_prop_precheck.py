"""Property: pre-checker verdicts agree with ground-truth execution.

The static pre-checker (repro.analysis.precheck) triages queries on the
specification graph alone, so its claims must hold for *every* run:

* **empty** — both strategies return zero bindings when the query is
  actually executed;
* **invalid / index-too-deep** — no value that reached the port in a real
  run carries an index that deep (the propagated depth is exact under the
  paper's Section 3.1 assumptions, which the executor satisfies);
* **viable** — execution proceeds and, whenever it produces bindings, the
  producing processors are within the statically computed reachable focus
  (the contrapositive of the empty proof).
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.precheck import precheck_query, upstream_processors
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values import nested
from repro.values.index import Index
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)

seeds = st.integers(min_value=0, max_value=10_000)


def random_static_query(case, analysis, rng: random.Random) -> LineageQuery:
    """A random query chosen *statically* — unlike the agreement test's
    generator it does not look at captured values, so it freely produces
    empty-answer, disconnected-focus, and over-deep-index queries."""
    flow = case.flow
    candidates = [
        (processor.name, port.name)
        for processor in flow.processors
        for port in processor.outputs
    ]
    candidates.extend((flow.name, port.name) for port in flow.outputs)
    node, port = rng.choice(candidates)
    depth = analysis.depth_of(PortRef(node, port))
    length = rng.randint(0, depth + 2)
    index = Index.of([rng.randint(0, 2) for _ in range(length)])
    pool = list(flow.processor_names)
    focus = rng.sample(pool, rng.randint(0, len(pool)))
    return LineageQuery.create(node, port, index, focus)


def execute_both(case, captured, query):
    with TraceStore() as store:
        store.insert_trace(captured.trace)
        naive = NaiveEngine(store).lineage(captured.run_id, query)
        indexproj = IndexProjEngine(store, case.flow).lineage(
            captured.run_id, query
        )
    return naive, indexproj


class TestPrecheckAgreement:
    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=99))
    def test_verdicts_agree_with_execution(self, seed, query_seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 200)
        analysis = propagate_depths(case.flow)
        rng = random.Random(query_seed * 6151 + seed)
        query = random_static_query(case, analysis, rng)
        report = precheck_query(analysis, query)

        captured = run_random_case(case)

        if report.is_invalid:
            # Statically generated queries always use real names, so the
            # only possible rejection is an over-deep index — and then no
            # value that actually reached the port can be that deep.
            assert all(i.kind == "index-too-deep" for i in report.issues)
            value = captured.result.port_values.get(
                PortRef(query.node, query.port)
            )
            if value is not None:
                deepest = max(
                    (len(leaf) for leaf, _ in nested.enumerate_leaves(value)),
                    default=0,
                )
                assert len(query.index) > deepest, (
                    f"seed={seed} rejected index {query.index.encode()!r} "
                    f"but a {deepest}-deep value reached {query.node}:"
                    f"{query.port}"
                )
            return

        naive, indexproj = execute_both(case, captured, query)
        if report.is_empty:
            assert not naive.bindings and not indexproj.bindings, (
                f"seed={seed} provably-empty {query} returned bindings"
            )
        else:
            # Viable: every produced binding belongs to the statically
            # reachable part of the focus set.  (Full NI/INDEXPROJ answer
            # agreement is only guaranteed for indexes that denote values
            # existing in the run — test_prop_agreement covers that; the
            # static generator also emits depth-legal but out-of-range
            # indexes, where the strategies' answers legitimately differ.)
            produced = {b.node for b in naive.bindings} | {
                b.node for b in indexproj.bindings
            }
            assert produced <= set(report.reachable_focus), (
                f"seed={seed} bindings outside reachable focus on {query}"
            )

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_nonempty_answers_are_never_rejected(self, seed):
        """Contrapositive: a query with actual results is always viable."""
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 200)
        analysis = propagate_depths(case.flow)
        captured = run_random_case(case)
        rng = random.Random(seed)

        # Query the workflow output with the full focus set and an index
        # drawn from a real leaf — the best chance of a non-empty answer.
        flow = case.flow
        binding = PortRef(flow.name, flow.outputs[0].name)
        value = captured.result.port_values.get(binding)
        assume(value is not None)
        leaves = list(nested.enumerate_leaves(value))
        assume(leaves)
        leaf_index, _ = rng.choice(leaves)
        cut = rng.randint(0, len(leaf_index))
        query = LineageQuery.create(
            binding.node, binding.port, list(leaf_index)[:cut],
            flow.processor_names,
        )
        naive, _ = execute_both(case, captured, query)
        report = precheck_query(analysis, query)
        if naive.bindings:
            assert report.is_viable
            assert {b.node for b in naive.bindings} <= set(
                report.reachable_focus
            )

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_upstream_closure_is_sound(self, seed):
        """Every processor that ever contributes a binding to the workflow
        output is in the statically computed upstream closure."""
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 200)
        captured = run_random_case(case)
        flow = case.flow
        binding = PortRef(flow.name, flow.outputs[0].name)
        closure = upstream_processors(flow, binding)
        query = LineageQuery.create(
            binding.node, binding.port, (), flow.processor_names
        )
        naive, _ = execute_both(case, captured, query)
        assert {b.node for b in naive.bindings} <= closure
