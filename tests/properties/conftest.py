"""Shared helpers of the differential property suites.

Every suite in this package proves the same shape of statement — some
execution mode (batched, cached, sharded) is byte-identical to a
reference execution — so they share the answer canonicalizer and the
query pool the randomized workloads are probed with.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.query.base import LineageQuery


def canonical(result) -> Dict[str, List[Tuple[str, str, str, str]]]:
    """Byte-accurate identity of a multi-run answer: keys + JSON values."""
    return {
        run_id: sorted(
            (*binding.key(), json.dumps(binding.value, sort_keys=True,
                                        default=repr))
            for binding in run_result.bindings
        )
        for run_id, run_result in result.per_run.items()
    }


def query_pool(case) -> List[LineageQuery]:
    """A small pool of valid queries over a random-workflow case.

    Small on purpose: interleavings repeat query shapes, and repeats are
    what make cache hits (and stale hits) possible.  The pool pins the
    root (empty) ``Index`` — the edge the extension-range trick must
    translate to "all non-empty encodings" — plus narrow- and full-focus
    variants and a mid-workflow port.
    """
    flow = case.flow
    names = list(flow.processor_names)
    return [
        LineageQuery.create(flow.name, flow.outputs[0].name, (), names),
        LineageQuery.create(flow.name, flow.outputs[0].name, (), names[:1]),
        LineageQuery.create(names[-1], "y", (), names),
    ]
