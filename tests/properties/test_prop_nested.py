"""Property-based tests for nested value operations."""

from hypothesis import given, strategies as st

from repro.values import nested
from repro.values.index import Index

atoms = st.text(min_size=1, max_size=4) | st.integers()


def values_of_depth(depth: int):
    """Homogeneous nested lists of exactly ``depth`` levels."""
    strategy = atoms
    for _ in range(depth):
        strategy = st.lists(strategy, min_size=1, max_size=3)
    return strategy


depths = st.integers(min_value=0, max_value=3)
depth_and_value = depths.flatmap(
    lambda d: st.tuples(st.just(d), values_of_depth(d))
)


class TestDepthProperties:
    @given(depth_and_value)
    def test_generated_depth_matches(self, case):
        depth, value = case
        assert nested.depth(value) == depth

    @given(depth_and_value)
    def test_wrap_increases_depth(self, case):
        depth, value = case
        assert nested.depth(nested.wrap(value, 2)) == depth + 2

    @given(depth_and_value)
    def test_homogeneous(self, case):
        _, value = case
        assert nested.is_homogeneous(value)


class TestAccessProperties:
    @given(depth_and_value)
    def test_every_leaf_reachable(self, case):
        _, value = case
        for index, leaf in nested.enumerate_leaves(value):
            assert nested.get_element(value, index) == leaf

    @given(depth_and_value)
    def test_leaf_count_matches_enumeration(self, case):
        _, value = case
        assert nested.count_leaves(value) == len(list(nested.enumerate_leaves(value)))

    @given(depth_and_value, st.data())
    def test_iter_at_every_level_consistent(self, case, data):
        depth, value = case
        level = data.draw(st.integers(min_value=0, max_value=depth))
        for index, sub in nested.iter_at_depth(value, level):
            assert len(index) == level
            assert nested.get_element(value, index) == sub

    @given(depth_and_value, st.data())
    def test_set_then_get(self, case, data):
        depth, value = case
        leaves = list(nested.enumerate_leaves(value))
        index, _ = data.draw(st.sampled_from(leaves))
        updated = nested.set_element(value, index, "SENTINEL")
        assert nested.get_element(updated, index) == "SENTINEL"
        # All other leaves untouched.
        for other_index, leaf in leaves:
            if other_index != index:
                assert nested.get_element(updated, other_index) == leaf


class TestFlattenProperties:
    @given(depths.flatmap(lambda d: values_of_depth(d + 2)))
    def test_flatten_reduces_depth_by_one(self, value):
        assert nested.depth(nested.flatten(value)) == nested.depth(value) - 1

    @given(depths.flatmap(lambda d: values_of_depth(d + 2)))
    def test_flatten_preserves_leaves_in_order(self, value):
        flattened = nested.flatten(value)
        assert [leaf for _, leaf in nested.enumerate_leaves(flattened)] == [
            leaf for _, leaf in nested.enumerate_leaves(value)
        ]

    @given(depth_and_value, st.integers(min_value=1, max_value=2))
    def test_flatten_inverts_wrap_modulo_singleton(self, case, levels):
        _, value = case
        assert nested.flatten(nested.wrap(value, levels), levels - 1) == [value]


class TestShapeProperties:
    @given(depth_and_value)
    def test_shape_has_same_structure(self, case):
        _, value = case
        shape = nested.shape(value)
        assert nested.count_leaves(shape) == nested.count_leaves(value)
        if isinstance(value, list):
            assert nested.depth(shape) == nested.depth(value)
