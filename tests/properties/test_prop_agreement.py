"""Property: the three lineage implementations agree on random workflows.

For random dataflows, random inputs, random query bindings, and random
focus sets, the reference recursion over the in-memory trace (Def. 1), the
database-backed naive traversal, and INDEXPROJ must return the same set of
bindings with the same values.  This is the central correctness claim of
the reproduction: the intensional inversion (Prop. 1) computes exactly
what extensional traversal computes.
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.graph import reference_lineage
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values import nested
from repro.values.index import Index

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)

seeds = st.integers(min_value=0, max_value=10_000)


def random_query(case, captured, rng: random.Random) -> LineageQuery:
    """A random query binding over ports that actually carry values."""
    candidates = []
    flow = case.flow
    for processor in flow.processors:
        for port in processor.outputs:
            candidates.append((processor.name, port.name))
    for port in flow.outputs:
        candidates.append((flow.name, port.name))
    rng.shuffle(candidates)
    for node, port in candidates:
        from repro.workflow.model import PortRef

        value = captured.result.port_values.get(PortRef(node, port))
        if value is None:
            continue
        # Random index: a prefix of a random leaf index (possibly empty).
        leaves = list(nested.enumerate_leaves(value))
        if leaves:
            leaf_index, _ = rng.choice(leaves)
            cut = rng.randint(0, len(leaf_index))
            index = Index.of(list(leaf_index)[:cut])
        else:
            index = Index()
        focus_pool = list(flow.processor_names)
        focus = rng.sample(focus_pool, rng.randint(0, len(focus_pool)))
        return LineageQuery.create(node, port, index, focus)
    return LineageQuery.create(flow.name, flow.outputs[0].name, (), ())


class TestStrategyAgreement:
    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=99))
    def test_three_way_agreement(self, seed, query_seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 250)
        captured = run_random_case(case)
        rng = random.Random(query_seed * 7919 + seed)
        query = random_query(case, captured, rng)

        reference = reference_lineage(
            captured.trace, query.node, query.port, query.index, query.focus
        )
        reference_keys = frozenset(b.key() for b in reference)

        with TraceStore() as store:
            store.insert_trace(captured.trace)
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, case.flow).lineage(
                captured.run_id, query
            )

        assert naive.binding_keys() == reference_keys, (
            f"seed={seed} NI disagrees with reference on {query}"
        )
        assert indexproj.binding_keys() == reference_keys, (
            f"seed={seed} INDEXPROJ disagrees with reference on {query}"
        )
        naive_values = {b.key(): b.value for b in naive.bindings}
        indexproj_values = {b.key(): b.value for b in indexproj.bindings}
        assert naive_values == indexproj_values, f"seed={seed} value mismatch"

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_indexproj_never_issues_more_lookups_than_focus_ports(self, seed):
        """|trace queries| <= |focus input ports| — the efficiency claim."""
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 250)
        captured = run_random_case(case)
        rng = random.Random(seed)
        query = random_query(case, captured, rng)
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, case.flow)
            result = engine.lineage(captured.run_id, query)
        focus_input_ports = sum(
            len(case.flow.processor(name).inputs)
            for name in query.focus
            if case.flow.has_processor(name)
        )
        assert result.stats.queries <= focus_input_ports
