"""Property: traces survive the relational store round trip exactly.

For random workflows and inputs, inserting a trace and loading it back
must reproduce every event, binding, index, and payload — in both the
inline-payload and interned-payload storage modes.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.store import TraceStore

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)

seeds = st.integers(min_value=0, max_value=10_000)


class TestStoreRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(seeds, st.booleans())
    def test_insert_load_identity(self, seed, interning):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 250)
        captured = run_random_case(case)
        with TraceStore(intern_values=interning) as store:
            store.insert_trace(captured.trace)
            restored = store.load_trace(captured.run_id)
        assert restored.workflow == captured.trace.workflow
        assert len(restored.xforms) == len(captured.trace.xforms)
        assert len(restored.xfers) == len(captured.trace.xfers)
        assert [str(e) for e in restored.xforms] == [
            str(e) for e in captured.trace.xforms
        ]
        assert [str(e) for e in restored.xfers] == [
            str(e) for e in captured.trace.xfers
        ]
        # Compare payloads positionally: a (node, port, index) key is NOT
        # value-unique — at a negative-mismatch port, the xfer event holds
        # the raw transferred value while the xform input holds the
        # singleton-wrapped value the instance consumed (Def. 2 wrapping).
        for restored_event, original_event in zip(
            restored.xforms, captured.trace.xforms
        ):
            for restored_binding, original_binding in zip(
                restored_event.inputs + restored_event.outputs,
                original_event.inputs + original_event.outputs,
            ):
                assert restored_binding.value == original_binding.value
        for restored_event, original_event in zip(
            restored.xfers, captured.trace.xfers
        ):
            assert restored_event.source.value == original_event.source.value

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_record_count_matches_in_memory(self, seed):
        case = make_random_workflow(seed)
        assume(estimated_instances(case) <= 250)
        captured = run_random_case(case)
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            assert (
                store.record_count(captured.run_id)
                == captured.trace.record_count
            )
