"""Property: batched execution is byte-identical to unbatched execution.

For random workflows, random queries, both strategies, random chunk
sizes, and with or without the cache stack, the set-based batched read
path (docs/PERFORMANCE.md) must produce exactly the bindings — keys
*and* JSON-encoded values, per run — of the per-key unbatched path.
Edge cases the strategies hide are pinned explicitly: the empty (root)
``Index``, key grids straddling the chunk boundary, and run scopes
containing deleted runs.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.provenance.store import BatchConfig
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.service import ProvenanceService

from tests.conftest import estimated_instances, make_random_workflow
from tests.properties.conftest import canonical, query_pool

seeds = st.integers(min_value=0, max_value=10_000)
chunk_sizes = st.integers(min_value=1, max_value=40)
strategies = st.sampled_from(["indexproj", "naive"])


class TestBatchedEqualsUnbatched:
    @settings(max_examples=50, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=2), strategies,
           chunk_sizes)
    def test_differential_engines(self, seed, query_ord, strategy, chunk):
        """Engine-level: batched == looped, any chunk size, no caches."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[query_ord]

        with ProvenanceService(cache=False) as service:
            service.register_workflow(case.flow)
            for _ in range(3):
                service.run(case.flow.name, case.inputs)
            scope = service.runs_of(case.flow.name)
            engine = (
                NaiveEngine(service.store)
                if strategy == "naive"
                else IndexProjEngine(service.store, case.flow)
            )
            looped = engine.lineage_multirun(scope, query)
            batched = engine.lineage_multirun_batched(
                scope, query, chunk_size=chunk
            )
            assert canonical(batched) == canonical(looped), (
                f"seed={seed} strategy={strategy} chunk={chunk} "
                f"query={query}"
            )
            # Never more round-trips than the per-key path issues.
            assert batched.sql_queries <= looped.sql_queries

    @settings(max_examples=25, deadline=None)
    @given(seeds, strategies)
    def test_differential_service_with_caches(self, seed, strategy):
        """Service-level: batched == unbatched through the cache stack,
        cold and warm."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=True) as service:
            service.register_workflow(case.flow)
            for _ in range(2):
                service.run(case.flow.name, case.inputs)
            reference = service.lineage(
                query, strategy=strategy, precheck=False, cache=False
            )
            for batch in (True, BatchConfig(chunk_size=2)):
                cold = service.lineage(
                    query, strategy=strategy, batch=batch,
                    precheck=False, cache=False,
                )
                assert canonical(cold) == canonical(reference), (
                    f"seed={seed} strategy={strategy} batch={batch}"
                )
            # Warm repeat through the trace cache: still identical, and
            # served without any store round-trip.
            warm = service.lineage(
                query, strategy=strategy, batch=True,
                precheck=False, cache=False,
            )
            assert canonical(warm) == canonical(reference)
            assert warm.sql_queries == 0

    @settings(max_examples=20, deadline=None)
    @given(seeds, strategies)
    def test_chunk_boundary_straddle(self, seed, strategy):
        """chunk = keys - 1 forces a 2-statement split mid-grid; the
        demultiplexed answer must not change."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=False) as service:
            service.register_workflow(case.flow)
            for _ in range(4):
                service.run(case.flow.name, case.inputs)
            scope = service.runs_of(case.flow.name)
            engine = (
                NaiveEngine(service.store)
                if strategy == "naive"
                else IndexProjEngine(service.store, case.flow)
            )
            reference = engine.lineage_multirun(scope, query)
            wide = engine.lineage_multirun_batched(scope, query)
            keys = wide.aggregate_stats().batch_keys
            assume(keys >= 2)
            straddling = engine.lineage_multirun_batched(
                scope, query, chunk_size=max(1, keys - 1)
            )
            assert canonical(straddling) == canonical(reference)
            assert canonical(wide) == canonical(reference)

    @settings(max_examples=20, deadline=None)
    @given(seeds, strategies)
    def test_deleted_run_in_mixed_scope(self, seed, strategy):
        """Keys of a deleted run inside the batch resolve to empty
        answers without disturbing the surviving runs'."""
        case = make_random_workflow(seed, max_processors=4)
        assume(estimated_instances(case) <= 150)
        query = query_pool(case)[0]

        with ProvenanceService(cache=False) as service:
            service.register_workflow(case.flow)
            for _ in range(3):
                service.run(case.flow.name, case.inputs)
            scope = service.runs_of(case.flow.name)
            victim = scope[1]
            service.store.delete_run(victim)
            engine = (
                NaiveEngine(service.store)
                if strategy == "naive"
                else IndexProjEngine(service.store, case.flow)
            )
            looped = engine.lineage_multirun(scope, query)
            batched = engine.lineage_multirun_batched(scope, query)
            assert canonical(batched) == canonical(looped)
            assert batched.per_run[victim].bindings == []
