"""Shared fixtures and random-workflow machinery for the test suite."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import pytest

from repro.engine.executor import WorkflowRunner
from repro.provenance.capture import CapturedRun, capture_run
from repro.provenance.store import TraceStore
from repro.values import nested
from repro.workflow.builder import DataflowBuilder
from repro.workflow.depths import propagate_depths
from repro.workflow.model import Dataflow


# ---------------------------------------------------------------------------
# Canonical hand-built workflows
# ---------------------------------------------------------------------------


def build_diamond_workflow() -> Dataflow:
    """GEN -> (A, B) -> F(cross product): the shape used in most examples.

    GEN emits a flat list; A and B iterate per element (mismatch 1); F
    joins the two branches with a binary cross product, so the output is
    a depth-2 list indexed ``[i, j]`` with lineage ``a[i]``, ``b[j]``.
    """
    return (
        DataflowBuilder("wf")
        .input("size", "integer")
        .output("out", "list(list(string))")
        .processor(
            "GEN",
            inputs=[("size", "integer")],
            outputs=[("list", "list(string)")],
            operation="list_generator",
            config={"out": "list"},
        )
        .processor(
            "A",
            inputs=[("x", "string")],
            outputs=[("y", "string")],
            operation="tag",
            config={"suffix": "-a"},
        )
        .processor(
            "B",
            inputs=[("x", "string")],
            outputs=[("y", "string")],
            operation="tag",
            config={"suffix": "-b"},
        )
        .processor(
            "F",
            inputs=[("a", "string"), ("b", "string")],
            outputs=[("y", "string")],
            operation="concat_pair",
        )
        .arcs(
            ("wf:size", "GEN:size"),
            ("GEN:list", "A:x"),
            ("GEN:list", "B:x"),
            ("A:y", "F:a"),
            ("B:y", "F:b"),
            ("F:y", "wf:out"),
        )
        .build()
    )


def build_fig3_workflow() -> Dataflow:
    """The paper's Fig. 3 abstract workflow.

    ``Q`` iterates over a list ``v`` (mismatch 1); ``R`` maps an atomic
    ``w`` to a whole list ``b`` (one-to-many, mismatch 0); ``P`` has three
    inputs with mismatches (1, 0, 1): ``X1`` from Q's per-element output,
    ``X2`` a whole list ``c``, ``X3`` iterating over R's output list.
    """
    return (
        DataflowBuilder("fig3")
        .input("v", "list(string)")
        .input("w", "string")
        .input("c", "list(string)")
        .output("out", "list(list(string))")
        .processor(
            "Q",
            inputs=[("X", "string")],
            outputs=[("Y", "string")],
            operation="tag",
            config={"suffix": "-q", "out": "Y"},
        )
        .processor(
            "R",
            inputs=[("X", "string")],
            outputs=[("Y", "list(string)")],
            operation="synth_value",
            config={"out": "Y", "out_depth": 1, "width": 3, "salt": "R"},
        )
        .processor(
            "P",
            inputs=[("X1", "string"), ("X2", "list(string)"), ("X3", "string")],
            outputs=[("Y", "string")],
            operation="synth_value",
            config={"out": "Y", "out_depth": 0, "salt": "P"},
        )
        .arcs(
            ("fig3:v", "Q:X"),
            ("fig3:w", "R:X"),
            ("Q:Y", "P:X1"),
            ("fig3:c", "P:X2"),
            ("R:Y", "P:X3"),
            ("P:Y", "fig3:out"),
        )
        .build()
    )


@pytest.fixture
def diamond_flow() -> Dataflow:
    return build_diamond_workflow()


@pytest.fixture
def fig3_flow() -> Dataflow:
    return build_fig3_workflow()


@pytest.fixture
def diamond_run(diamond_flow) -> CapturedRun:
    return capture_run(diamond_flow, {"size": 3})


@pytest.fixture
def diamond_store(diamond_run) -> TraceStore:
    store = TraceStore()
    store.insert_trace(diamond_run.trace)
    yield store
    store.close()


@pytest.fixture
def fig3_run(fig3_flow) -> CapturedRun:
    inputs = {"v": ["v0", "v1", "v2"], "w": "w", "c": ["c0", "c1"]}
    return capture_run(fig3_flow, inputs)


# ---------------------------------------------------------------------------
# Random workflow generation (shared by the property-based tests)
# ---------------------------------------------------------------------------


@dataclass
class RandomWorkflowCase:
    """A randomly generated but executable workflow with its inputs."""

    flow: Dataflow
    inputs: Dict[str, Any]
    seed: int


def _random_value(rng: random.Random, depth: int, width_max: int = 3) -> Any:
    if depth == 0:
        return f"v{rng.randrange(1000)}"
    width = rng.randint(1, width_max)
    return [_random_value(rng, depth - 1, width_max) for _ in range(width)]


def make_random_workflow(
    seed: int,
    max_processors: int = 5,
    max_inputs_per_processor: int = 2,
    max_port_depth: int = 1,
    max_input_depth: int = 2,
) -> RandomWorkflowCase:
    """Build a random acyclic workflow over ``synth_value`` processors.

    Every processor output is wired either onward or to a workflow output
    so the whole graph is exercised; unconnected processor inputs get
    declared-depth defaults via config.  The construction keeps depths
    small enough that the instance count stays manageable, which the
    property tests additionally enforce with ``assume``.
    """
    rng = random.Random(seed)
    builder = DataflowBuilder(f"rand{seed}")
    workflow_inputs: List[Tuple[str, int]] = []
    for i in range(rng.randint(1, 2)):
        depth = rng.randint(0, max_input_depth)
        builder.input(f"in{i}", _type_text(depth))
        workflow_inputs.append((f"in{i}", depth))

    #: (source ref text, producer name or None for workflow inputs)
    available_sources: List[Tuple[str, int]] = [
        (f"rand{seed}:{name}", depth) for name, depth in workflow_inputs
    ]
    processor_count = rng.randint(1, max_processors)
    for p in range(processor_count):
        name = f"P{p}"
        n_inputs = rng.randint(1, max_inputs_per_processor)
        input_decls = []
        wirings = []
        defaults: Dict[str, Any] = {}
        # Occasionally build a dot (zip) processor: all inputs wired from
        # one source at dd 0, so the lockstep shapes are guaranteed equal.
        use_dot = (
            n_inputs >= 2 and available_sources and rng.random() < 0.25
        )
        if use_dot:
            source, _ = rng.choice(available_sources)
            for i in range(n_inputs):
                port = f"x{i}"
                input_decls.append((port, _type_text(0)))
                wirings.append((source, f"{name}:{port}"))
        else:
            for i in range(n_inputs):
                port = f"x{i}"
                dd = rng.randint(0, max_port_depth)
                input_decls.append((port, _type_text(dd)))
                if available_sources and rng.random() < 0.85:
                    source, _ = rng.choice(available_sources)
                    wirings.append((source, f"{name}:{port}"))
                else:
                    defaults[port] = _random_value(rng, dd)
        out_depth = rng.randint(0, max_port_depth)
        iteration = "dot" if use_dot else "cross"
        builder.processor(
            name,
            inputs=input_decls,
            outputs=[("y", _type_text(out_depth))],
            operation="synth_value",
            iteration=iteration,
            config={
                "out": "y",
                "out_depth": out_depth,
                "width": rng.randint(1, 2),
                "salt": name,
                "defaults": defaults,
            },
        )
        for source, sink in wirings:
            builder.arc(source, sink)
        available_sources.append((f"{name}:y", out_depth))

    # Expose the last processor's output (workflows need at least one sink).
    builder.output("out", "string")
    builder.arc(f"P{processor_count - 1}:y", f"rand{seed}:out")
    flow = builder.build()
    inputs = {
        name: _random_value(rng, depth) for name, depth in workflow_inputs
    }
    return RandomWorkflowCase(flow=flow, inputs=inputs, seed=seed)


def _type_text(depth: int) -> str:
    text = "string"
    for _ in range(depth):
        text = f"list({text})"
    return text


def estimated_instances(case: RandomWorkflowCase) -> int:
    """Upper bound on total processor instances for one run (width <= 3)."""
    analysis = propagate_depths(case.flow)
    total = 0
    for processor in case.flow.processors:
        total += 3 ** analysis.iteration_level(processor.name)
    return total


def run_random_case(case: RandomWorkflowCase) -> CapturedRun:
    return capture_run(case.flow, case.inputs, runner=WorkflowRunner())
