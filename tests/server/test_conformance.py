"""Differential conformance: HTTP answers == in-process answers.

The server's contract is that ``GET /v1/lineage`` and
``POST /v1/lineage:batch`` are a transport, not a reinterpretation: for
any workflow, any query, any strategy, the ``answer`` document coming
back over the wire is **byte-identical** (via
:func:`repro.server.codec.canonical_bytes`) to encoding the
:class:`~repro.service.ProvenanceService` result in process.  Timings
and round-trip counters live in ``meta`` and are excluded.

The suite reuses the property-test machinery: random executable
workflows (``make_random_workflow``), random query bindings over ports
that actually carry values (``random_query``), and runs the full cross
product strategies x batching over >= 25 workflow/query cases — one
HTTP tenant per workflow, all served by a single server instance.
"""

from __future__ import annotations

import random

import pytest

from repro.query.parser import format_query
from repro.server import ServerClient, canonical_bytes, encode_answer
from repro.service import ProvenanceService

from tests.conftest import (
    estimated_instances,
    make_random_workflow,
    run_random_case,
)
from tests.properties.test_prop_agreement import random_query
from tests.server.conftest import boot_server

#: Number of random workflows; each contributes QUERIES_PER_CASE cases.
WORKFLOW_COUNT = 15
QUERIES_PER_CASE = 2
RUNS_PER_CASE = 2

STRATEGIES = ("indexproj", "naive", "auto")
BATCHING = (False, True)


def _generate_cases():
    """(tenant, case, captured, queries) tuples, instance-count bounded."""
    cases = []
    seed = 0
    while len(cases) < WORKFLOW_COUNT and seed < 500:
        case = make_random_workflow(seed)
        seed += 1
        if estimated_instances(case) > 250:
            continue
        captured = run_random_case(case)
        rng = random.Random(case.seed * 7919 + 17)
        queries = [
            random_query(case, captured, rng)
            for _ in range(QUERIES_PER_CASE)
        ]
        cases.append((f"case{case.seed}", case, queries))
    assert len(cases) == WORKFLOW_COUNT
    return cases


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """One server, one tenant per random workflow, two runs each."""
    root = tmp_path_factory.mktemp("conformance")
    cases = _generate_cases()
    services = {}
    for tenant, case, _queries in cases:
        service = ProvenanceService(str(root / f"{tenant}.db"))
        service.register_workflow(case.flow)
        for _ in range(RUNS_PER_CASE):
            service.run(case.flow.name, case.inputs)
        services[tenant] = service
    try:
        with boot_server(services, max_workers=4, max_queue=32) as (url, _app):
            yield url, cases, services
    finally:
        for service in services.values():
            service.close()


def _query_params(query):
    params = {}
    if len(query.index):
        params["index"] = query.index.encode()
    if query.focus:
        params["focus"] = ",".join(query.focus)
    return params


def _http_answer(client, query, **params):
    response = client.lineage(
        run="-", node=query.node, port=query.port,
        **_query_params(query), **params,
    )
    assert response.status == 200, response.body
    return response.body


class TestLineageConformance:
    def test_http_matches_inprocess_every_strategy(self, world):
        """>= 25 cases x {indexproj, naive, auto} x {batch on, off}."""
        url, cases, services = world
        compared = 0
        for tenant, _case, queries in cases:
            oracle = services[tenant]
            with ServerClient(url, tenant=tenant) as client:
                for query in queries:
                    for strategy in STRATEGIES:
                        for batch in BATCHING:
                            http = _http_answer(
                                client, query,
                                strategy=strategy,
                                batch="true" if batch else "false",
                                cache="false",
                            )
                            expected = oracle.lineage(
                                query,
                                strategy=strategy,
                                batch=batch,
                                cache=False,
                            )
                            assert canonical_bytes(
                                http["answer"]
                            ) == canonical_bytes(encode_answer(expected)), (
                                f"{tenant}: {query} diverged under "
                                f"strategy={strategy} batch={batch}"
                            )
                    compared += 1
        assert compared >= 25

    def test_q_notation_matches_path_form(self, world):
        """The parsed ``?q=lin(...)`` route is the same query."""
        url, cases, _services = world
        exercised = 0
        for tenant, _case, queries in cases:
            with ServerClient(url, tenant=tenant) as client:
                for query in queries:
                    if not query.focus:
                        continue  # the text notation needs a focus set
                    by_path = _http_answer(client, query)
                    by_q = client.lineage(q=format_query(query))
                    assert by_q.status == 200, by_q.body
                    assert canonical_bytes(
                        by_q.body["answer"]
                    ) == canonical_bytes(by_path["answer"])
                    exercised += 1
        assert exercised >= 10  # rng keeps most focus sets non-empty

    def test_cache_warm_repeat_identical(self, world):
        """Warm result-cache hits serve the same bytes as cold misses."""
        url, cases, _services = world
        cached = 0
        for tenant, _case, queries in cases:
            with ServerClient(url, tenant=tenant) as client:
                for query in queries:
                    first = _http_answer(client, query, cache="true")
                    second = _http_answer(client, query, cache="true")
                    assert canonical_bytes(
                        second["answer"]
                    ) == canonical_bytes(first["answer"])
                    if second["meta"]["from_cache"]:
                        assert second["meta"]["sql_queries"] == 0
                        cached += 1
                    else:
                        # Only statically answered (precheck-empty)
                        # queries legitimately stay out of the cache.
                        assert second["meta"]["sql_queries"] == 0
                        assert second["answer"]["bindings"] in (
                            {}, {run: [] for run
                                 in second["answer"]["runs"]},
                        )
        assert cached >= 5

    def test_single_run_scope_conformance(self, world):
        """Scoping to one concrete run id matches the in-process scope."""
        url, cases, services = world
        for tenant, case, queries in cases[:5]:
            oracle = services[tenant]
            run_id = oracle.runs_of(case.flow.name)[0]
            with ServerClient(url, tenant=tenant) as client:
                query = queries[0]
                response = client.lineage(
                    run=run_id, node=query.node, port=query.port,
                    **_query_params(query),
                )
                assert response.status == 200, response.body
                expected = oracle.lineage(query, runs=[run_id])
                assert canonical_bytes(
                    response.body["answer"]
                ) == canonical_bytes(encode_answer(expected))
                assert response.body["answer"]["runs"] == [run_id]


class TestBatchConformance:
    def test_batch_endpoint_matches_lineage_many(self, world):
        """One POST per workflow == ``lineage_many`` over the same set."""
        url, cases, services = world
        for strategy in STRATEGIES:
            for tenant, _case, queries in cases:
                oracle = services[tenant]
                payload = {
                    "queries": [format_query(q) for q in queries
                                if q.focus],
                    "strategy": strategy,
                    "cache": False,
                }
                if not payload["queries"]:
                    continue
                with ServerClient(url, tenant=tenant) as client:
                    response = client.lineage_batch(payload)
                assert response.status == 200, response.body
                expected = oracle.lineage_many(
                    payload["queries"], strategy=strategy, cache=False
                )
                got = [item["answer"] for item in response.body["results"]]
                assert [canonical_bytes(a) for a in got] == [
                    canonical_bytes(encode_answer(r)) for r in expected
                ]

    def test_object_form_queries_match_text_form(self, world):
        """Structured query objects and lin(...) strings are one query."""
        url, cases, _services = world
        tenant, _case, queries = cases[0]
        query = next(q for q in queries if q.focus)
        body = {
            "queries": [
                format_query(query),
                {
                    "node": query.node,
                    "port": query.port,
                    "index": query.index.encode(),
                    "focus": list(query.focus),
                },
            ]
        }
        with ServerClient(url, tenant=tenant) as client:
            response = client.lineage_batch(body)
        assert response.status == 200, response.body
        first, second = response.body["results"]
        assert canonical_bytes(first["answer"]) == canonical_bytes(
            second["answer"]
        )
