"""Endpoint behavior of the provenance query server.

Routing, tenancy (header and path-prefix selection, LRU-bounded open
handles), the ``view=`` rollup parameter, structured error mapping, the
``X-Repro-Trace`` envelope, and the Prometheus metrics endpoint — all
exercised over real sockets via :func:`tests.server.conftest.boot_server`.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.query.views import UserView, group_summary, rollup
from repro.server import ServerClient, TenantRegistry
from repro.server.codec import encode_binding
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow
from tests.server.conftest import boot_server


class TestRoutingAndHealth:
    def test_healthz(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.healthz()
                assert response.status == 200
                assert response.body["status"] == "ok"
                assert response.body["admission"]["capacity"] > 0

    def test_unknown_endpoint_404(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.get("/v1/nope")
                assert response.status == 404
                assert response.error_code == "unknown-endpoint"

    def test_method_not_allowed(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.post("/v1/lineage/-/wf/out", body={})
                assert response.status == 405

    def test_keep_alive_connection_reused(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                for _ in range(3):
                    assert client.healthz().status == 200
                # Same HTTPConnection object throughout (keep-alive held).
                assert client._conn is not None

    def test_trace_headers(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(q="lin(<wf:out[0.1]>, {A, B})")
                trace_id = response.trace_id
                assert trace_id is not None and len(trace_id) == 32
                parent = response.traceparent
                assert parent is not None
                assert parent.startswith(f"00-{trace_id}-")
                # The request envelope lives on the root span, fetched
                # back through the trace endpoint.
                fetched = client.trace(trace_id)
                assert fetched.status == 200
                root = fetched.body["root"]
                assert root["name"] == "server.request"
                assert root["trace_id"] == trace_id
                attrs = root["attributes"]
                assert attrs["tenant"] == "default"
                assert attrs["status"] == 200
                assert attrs["admission"]["capacity"] == 12
                assert attrs["sql_queries"] >= 1


class TestLineageEndpoint:
    def test_path_and_q_forms_agree(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                by_path = client.lineage(
                    run="-", node="wf", port="out",
                    index="0.1", focus="A,B",
                )
                by_q = client.lineage(q="lin(<wf:out[0.1]>, {A, B})")
                assert by_path.status == by_q.status == 200
                assert by_path.body["answer"] == by_q.body["answer"]

    def test_single_run_scope(self, diamond_service):
        run_id = diamond_service.run_ids[0]
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(
                    run=run_id, node="wf", port="out", index="0.1"
                )
                assert response.body["answer"]["runs"] == [run_id]

    def test_strategies_agree_over_http(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                answers = {
                    strategy: client.lineage(
                        q="lin(<wf:out[0.1]>, {A, B})", strategy=strategy
                    ).body["answer"]
                    for strategy in ("indexproj", "naive", "auto")
                }
                assert answers["indexproj"] == answers["naive"]
                assert answers["indexproj"] == answers["auto"]

    def test_batch_parameter_accepts_chunk_size(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                plain = client.lineage(
                    q="lin(<wf:out[0.1]>, {A, B})", batch="false"
                )
                batched = client.lineage(
                    q="lin(<wf:out[0.1]>, {A, B})", batch="8"
                )
                assert batched.body["answer"] == plain.body["answer"]
                assert (
                    batched.body["meta"]["sql_queries"]
                    <= plain.body["meta"]["sql_queries"]
                )

    def test_cache_param_warm_repeat(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                cold = client.lineage(
                    q="lin(<wf:out[0.1]>, {A, B})", cache="true"
                )
                warm = client.lineage(
                    q="lin(<wf:out[0.1]>, {A, B})", cache="true"
                )
                assert warm.body["answer"] == cold.body["answer"]
                assert warm.body["meta"]["from_cache"] is True
                assert warm.body["meta"]["sql_queries"] == 0
                bypass = client.lineage(
                    q="lin(<wf:out[0.1]>, {A, B})", cache="false"
                )
                assert bypass.body["meta"]["from_cache"] is False

    def test_precheck_empty_focus_statically_answered(self, diamond_service):
        """GEN has no upstream focus path from F -> provably empty."""
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(q="lin(<GEN:list[0]>, {F})")
                assert response.status == 200
                assert response.body["meta"]["sql_queries"] == 0
                assert response.body["answer"]["bindings"] == {}


class TestErrorMapping:
    @pytest.mark.parametrize(
        "path,params,status,code",
        [
            ("/v1/lineage/-", {"q": "lin("}, 400, "parse-error"),
            ("/v1/lineage/-", {"q": "lin(<P:Y[x]>, {Q})"}, 400, "parse-error"),
            ("/v1/lineage/-/wf/out", {"index": "a.b"}, 400, "bad-argument"),
            ("/v1/lineage/-/wf/out", {"strategy": "magic"}, 400,
             "bad-argument"),
            ("/v1/lineage/-/wf/out", {"cache": "maybe"}, 400, "bad-argument"),
            ("/v1/lineage/-/wf/out", {"workers": "many"}, 400,
             "bad-argument"),
            ("/v1/lineage/-/wf/out", {"groups": "branches"}, 400,
             "bad-argument"),
            ("/v1/lineage/-/wf/out", {"q": "lin(<wf:out[0]>, {})"}, 400,
             "conflicting-query"),
            ("/v1/lineage/-/wf", {}, 404, "unknown-endpoint"),
            ("/v1/check-query", {}, 400, "bad-argument"),
        ],
    )
    def test_bad_requests(self, diamond_service, path, params, status, code):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.get(path, params=params)
                assert (response.status, response.error_code) == (status, code)

    def test_invalid_query_carries_precheck_issues(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(q="lin(<wf:out[0]>, {NOPE})")
                assert response.status == 400
                assert response.error_code == "invalid-query"
                issues = response.body["error"]["details"]["issues"]
                assert issues[0]["kind"] == "unknown-focus"

    def test_unknown_node_404_with_suggestions(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(q="lin(<wg:out[0]>, {A})")
                assert response.status == 404
                assert response.error_code == "unknown-workflow"


class TestTenancy:
    def test_header_and_path_prefix_select_same_tenant(self):
        alpha = ProvenanceService()
        alpha.register_workflow(build_diamond_workflow())
        alpha.run("wf", {"size": 2})
        try:
            with boot_server({"alpha": alpha}) as (url, _app):
                with ServerClient(url, tenant="alpha") as by_header:
                    with ServerClient(url) as by_path:
                        one = by_header.get("/v1/stats")
                        two = by_path.get("/t/alpha/v1/stats")
                        assert one.status == two.status == 200
                        assert one.body["store"] == two.body["store"]
        finally:
            alpha.close()

    def test_unknown_tenant_404(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url, tenant="ghost") as client:
                response = client.get("/v1/stats")
                assert response.status == 404
                assert response.error_code == "unknown-tenant"

    def test_bad_tenant_name_400(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.get("/t/..%2Fetc/v1/stats")
                assert response.status == 400
                assert response.error_code == "bad-tenant"

    def test_lazy_open_and_lru_eviction(self, tmp_path):
        """Path-mode tenants open lazily and evict beyond max_open."""
        flow = build_diamond_workflow()
        for tenant in ("t1", "t2", "t3"):
            service = ProvenanceService(str(tmp_path / f"{tenant}.db"))
            service.register_workflow(flow)
            service.run("wf", {"size": 2})
            service.close()

        def setup(service, _tenant):
            service.register_workflow(flow)

        registry = TenantRegistry(
            root=str(tmp_path), setup=setup, max_open=2
        )
        with boot_server(registry=registry) as (url, _app):
            with ServerClient(url) as client:
                for tenant in ("t1", "t2", "t3", "t1"):
                    response = client.get(f"/t/{tenant}/v1/stats")
                    assert response.status == 200, response.body
                    assert response.body["store"]["runs"] == 1
                stats = client.get("/t/t1/v1/stats").body["registry"]
                assert stats["open"] <= 2
                assert stats["evictions"] >= 2  # t1 evicted then re-opened
            with ServerClient(url, tenant="t2") as client:
                response = client.lineage(q="lin(<wf:out[0.1]>, {A, B})")
                assert response.status == 200


class TestViews:
    def test_view_param_expands_and_rolls_up(self, diamond_service):
        view = UserView("stages", {"branches": ["A", "B"], "source": ["GEN"]})
        registry = TenantRegistry()
        registry.register_view("default", view)
        with boot_server(
            {"default": diamond_service}, registry=registry
        ) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(
                    run="-", node="wf", port="out", index="0.1",
                    view="stages", groups="branches",
                )
                assert response.status == 200
                answer = response.body["answer"]
                assert answer["view"] == "stages"
                # Server rollup == in-process rollup of the same query.
                result = diamond_service.lineage(
                    "lin(<wf:out[0.1]>, {A, B})"
                )
                for run_id, per_run in result.per_run.items():
                    expected = {
                        group: [encode_binding(b) for b in bindings]
                        for group, bindings in group_summary(
                            rollup(per_run.bindings, view)
                        ).items()
                    }
                    assert answer["groups"][run_id] == expected
                    assert set(answer["groups"][run_id]) == {"branches"}

    def test_view_without_groups_uses_every_group(self, diamond_service):
        view = UserView("stages", {"branches": ["A", "B"], "source": ["GEN"]})
        registry = TenantRegistry()
        registry.register_view("default", view)
        with boot_server(
            {"default": diamond_service}, registry=registry
        ) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(
                    run="-", node="wf", port="out", index="0.1",
                    view="stages",
                )
                assert response.status == 200
                groups = next(iter(response.body["answer"]["groups"].values()))
                # Omitting ?groups= rolls up every group of the view; GEN
                # is upstream of out[0.1], so "source" shows up too.
                assert set(groups) == {"branches", "source"}

    def test_unknown_view_and_group_404(self, diamond_service):
        view = UserView("stages", {"branches": ["A", "B"]})
        registry = TenantRegistry()
        registry.register_view("default", view)
        with boot_server(
            {"default": diamond_service}, registry=registry
        ) as (url, _app):
            with ServerClient(url) as client:
                missing_view = client.lineage(
                    run="-", node="wf", port="out", view="nope"
                )
                assert missing_view.status == 404
                assert missing_view.error_code == "unknown-view"
                missing_group = client.lineage(
                    run="-", node="wf", port="out",
                    view="stages", groups="nope",
                )
                assert missing_group.status == 404
                assert missing_group.error_code == "unknown-group"

    def test_view_plus_focus_rejected(self, diamond_service):
        registry = TenantRegistry()
        registry.register_view(
            "default", UserView("stages", {"branches": ["A", "B"]})
        )
        with boot_server(
            {"default": diamond_service}, registry=registry
        ) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(
                    run="-", node="wf", port="out",
                    view="stages", focus="A",
                )
                assert response.status == 400

    def test_shared_view_visible_to_all_tenants(self, diamond_service):
        registry = TenantRegistry()
        registry.register_shared_view(
            UserView("stages", {"branches": ["A", "B"]})
        )
        with boot_server(
            {"default": diamond_service}, registry=registry
        ) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage(
                    run="-", node="wf", port="out", index="0.1",
                    view="stages",
                )
                assert response.status == 200


class TestBatchEndpoint:
    def test_mixed_text_and_object_queries(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage_batch(
                    {
                        "queries": [
                            "lin(<wf:out[0.1]>, {A, B})",
                            {"node": "wf", "port": "out", "index": "0.1",
                             "focus": ["A", "B"]},
                        ]
                    }
                )
                assert response.status == 200
                assert response.body["count"] == 2
                first, second = response.body["results"]
                assert first["answer"] == second["answer"]

    def test_batch_matches_lineage_many(self, diamond_service):
        queries = ["lin(<wf:out[0.1]>, {A})", "lin(<wf:out[1.0]>, {B})"]
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage_batch(
                    {"queries": queries, "strategy": "naive"}
                )
        from repro.server.codec import encode_answer

        expected = [
            encode_answer(result)
            for result in diamond_service.lineage_many(
                queries, strategy="naive"
            )
        ]
        got = [item["answer"] for item in response.body["results"]]
        assert got == expected

    @pytest.mark.parametrize(
        "body,code",
        [
            ({}, "bad-argument"),
            ({"queries": []}, "bad-argument"),
            ({"queries": "lin(<wf:out[0]>, {A})"}, "bad-argument"),
            ({"queries": [42]}, "bad-argument"),
            ({"queries": [{"node": "wf"}]}, "bad-argument"),
            ({"queries": ["lin(<wf:out[0]>, {A})"], "runs": "r1"},
             "bad-argument"),
            ({"queries": ["lin(<wf:out[0]>, {A})"], "strategy": "magic"},
             "bad-argument"),
            ({"queries": ["lin(<wf:out[0]>, {A})"], "max_workers": 0},
             "bad-argument"),
        ],
    )
    def test_malformed_bodies(self, diamond_service, body, code):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage_batch(body)
                assert response.status == 400
                assert response.error_code == code

    def test_oversized_batch_413(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                response = client.lineage_batch(
                    {"queries": ["lin(<wf:out[0]>, {A})"] * 257}
                )
                assert response.status == 413
                assert response.error_code == "batch-too-large"

    def test_malformed_json_body(self, diamond_service):
        import http.client

        with boot_server({"default": diamond_service}) as (url, _app):
            host = url.split("//")[1]
            conn = http.client.HTTPConnection(host, timeout=10)
            conn.request(
                "POST", "/v1/lineage:batch", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            raw = conn.getresponse()
            body = json.loads(raw.read())
            assert raw.status == 400
            assert body["error"]["code"] == "protocol-error"
            conn.close()


class TestIntrospectionEndpoints:
    def test_lint_all_and_single(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                everything = client.get("/v1/lint")
                assert everything.status == 200
                assert "wf" in everything.body["findings"]
                single = client.get("/v1/lint", params={"workflow": "wf"})
                assert single.body["findings"]["wf"] == (
                    everything.body["findings"]["wf"]
                )
                missing = client.get("/v1/lint", params={"workflow": "zz"})
                assert missing.status == 404

    def test_check_query_verdicts(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                viable = client.get(
                    "/v1/check-query",
                    params={"q": "lin(<wf:out[0.1]>, {A})", "runs": 3},
                )
                assert viable.status == 200
                assert viable.body["verdict"] == "viable"
                assert viable.body["chosen_strategy"] in (
                    "indexproj", "naive"
                )
                assert viable.body["round_trips"]["unbatched"] >= 1
                invalid = client.get(
                    "/v1/check-query", params={"q": "lin(<wf:out[0]>, {X})"}
                )
                assert invalid.status == 200
                assert invalid.body["verdict"] == "invalid"
                assert invalid.body["issues"][0]["kind"] == "unknown-focus"

    def test_stats_and_cache_stats(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                stats = client.get("/v1/stats")
                assert stats.body["store"]["runs"] == 2
                assert stats.body["admission"]["capacity"] == 12
                cache_stats = client.get("/v1/cache-stats")
                assert cache_stats.body["enabled"] is True

    def test_metrics_exposition(self, diamond_service):
        with boot_server({"default": diamond_service}) as (url, _app):
            with ServerClient(url) as client:
                client.lineage(q="lin(<wf:out[0.1]>, {A, B})")
                response = client.get("/v1/metrics")
                assert response.status == 200
                text = response.body
                assert "repro_server_requests_total" in text
                assert "repro_server_responses_200_total" in text
                assert "repro_server_request_seconds" in text


class TestConcurrentClients:
    def test_parallel_clients_all_answered(self, diamond_service):
        """A small herd below capacity: every request gets a 200."""
        with boot_server(
            {"default": diamond_service}, max_workers=4, max_queue=8
        ) as (url, _app):
            statuses = []
            lock = threading.Lock()

            def worker():
                with ServerClient(url) as client:
                    for _ in range(5):
                        status = client.lineage(
                            q="lin(<wf:out[0.1]>, {A, B})", cache="false"
                        ).status
                        with lock:
                            statuses.append(status)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses == [200] * 20
