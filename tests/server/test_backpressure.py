"""Backpressure behavior under slow-store fault injection.

Saturate the bounded worker pool with artificially slow trace reads
(:class:`~repro.provenance.faults.FaultInjector`) and assert the
admission contract: occupancy never exceeds ``max_workers + max_queue``,
excess arrivals get an immediate 429 with ``Retry-After``, requests that
outlive their deadline get a 504, the liveness endpoint keeps answering
throughout (it never enters the pool), and the server recovers fully
once the store is fast again.
"""

from __future__ import annotations

import threading
import time

from repro.provenance.faults import FaultInjector
from repro.server import ServerClient
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow
from tests.server.conftest import boot_server

QUERY = "lin(<wf:out[0.1]>, {A, B})"


def _slow_service(tmp_path, delay: float):
    faults = FaultInjector()
    service = ProvenanceService(
        str(tmp_path / "slow.db"), faults=faults, cache=False
    )
    service.register_workflow(build_diamond_workflow())
    service.run("wf", {"size": 2})
    faults.inject_read_delay(delay)
    return service, faults


class TestQueueSaturation:
    def test_storm_gets_clean_429s_and_bounded_queue(self, tmp_path):
        service, _faults = _slow_service(tmp_path, delay=0.25)
        clients = 12
        try:
            with boot_server(
                {"default": service}, max_workers=2, max_queue=2,
            ) as (url, app):
                capacity = app.admission.capacity
                assert capacity == 4
                barrier = threading.Barrier(clients + 1)
                statuses = []
                retry_afters = []
                lock = threading.Lock()

                def worker():
                    with ServerClient(url) as client:
                        barrier.wait()
                        response = client.lineage(q=QUERY, cache="false")
                        with lock:
                            statuses.append(response.status)
                            if response.status == 429:
                                retry_afters.append(response.retry_after)
                                assert (
                                    response.error_code == "queue-full"
                                )

                threads = [
                    threading.Thread(target=worker) for _ in range(clients)
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()

                # While the pool is saturated, liveness keeps answering —
                # /healthz never enters the admission queue.
                with ServerClient(url) as probe:
                    started = time.perf_counter()
                    health = probe.healthz()
                    elapsed = time.perf_counter() - started
                    assert health.status == 200
                    assert elapsed < 0.25  # no slow-store read on this path

                for thread in threads:
                    thread.join(timeout=60)
                assert sorted(set(statuses)) in ([200, 429], [429], [200])
                assert statuses.count(200) >= 1
                assert statuses.count(429) >= clients - capacity - 2
                assert statuses.count(200) + statuses.count(429) == clients
                assert all(ra is not None and ra >= 1 for ra in retry_afters)
                # Occupancy never exceeded capacity: bounded queueing.
                assert app.admission.depth()["peak_inflight"] <= capacity
        finally:
            service.close()

    def test_rejections_surface_in_metrics(self, tmp_path):
        service, faults = _slow_service(tmp_path, delay=0.2)
        try:
            with boot_server(
                {"default": service}, max_workers=1, max_queue=0,
            ) as (url, app):
                barrier = threading.Barrier(2)
                first_status = []

                def occupy():
                    with ServerClient(url) as client:
                        barrier.wait()
                        first_status.append(
                            client.lineage(q=QUERY, cache="false").status
                        )

                thread = threading.Thread(target=occupy)
                thread.start()
                barrier.wait()
                time.sleep(0.05)  # let the occupier reach the store read
                with ServerClient(url) as client:
                    rejected = client.lineage(q=QUERY, cache="false")
                    assert rejected.status == 429
                    details = rejected.body["error"]["details"]
                    assert details["capacity"] == 1
                    # Even the rejected request leaves a retrievable trace
                    # whose root records the occupancy it was refused at.
                    fetched = client.trace(rejected.trace_id)
                    assert fetched.status == 200
                    attrs = fetched.body["root"]["attributes"]
                    assert attrs["admission"]["inflight"] >= 1
                    assert attrs["error"] == "queue-full"
                    metrics = client.get("/v1/metrics").body
                    assert "repro_server_rejected_queue_full_total" in metrics
                    assert "repro_server_responses_429_total" in metrics
                thread.join(timeout=30)
                assert first_status == [200]
        finally:
            service.close()


class TestDeadlines:
    def test_slow_store_times_out_with_504(self, tmp_path):
        service, faults = _slow_service(tmp_path, delay=0.5)
        try:
            with boot_server(
                {"default": service}, max_workers=2, max_queue=2,
                timeout=0.2,
            ) as (url, app):
                with ServerClient(url) as client:
                    response = client.lineage(q=QUERY, cache="false")
                    assert response.status == 504
                    assert response.error_code == "deadline-exceeded"
                    # Liveness is unaffected by the timed-out worker.
                    assert client.healthz().status == 200
                # The abandoned worker finishes on its own and frees its
                # slot; once the store is fast again the server recovers.
                faults.reset()
                deadline = time.time() + 30
                while time.time() < deadline:
                    with ServerClient(url) as client:
                        response = client.lineage(q=QUERY, cache="false")
                        if response.status == 200:
                            break
                    time.sleep(0.1)
                assert response.status == 200
                # The abandoned worker drains on its own schedule; the
                # slot must come back once it does.
                deadline = time.time() + 30
                while time.time() < deadline:
                    if app.admission.depth()["inflight"] == 0:
                        break
                    time.sleep(0.05)
                assert app.admission.depth()["inflight"] == 0
        finally:
            service.close()

    def test_timeout_slot_is_not_leaked(self, tmp_path):
        """A 504'd request releases its slot when the thread finishes."""
        service, faults = _slow_service(tmp_path, delay=0.3)
        try:
            with boot_server(
                {"default": service}, max_workers=1, max_queue=0,
                timeout=0.1,
            ) as (url, app):
                with ServerClient(url) as client:
                    assert client.lineage(
                        q=QUERY, cache="false"
                    ).status == 504
                # Until the worker thread drains, the slot stays occupied
                # (that is the admission accounting), then frees.
                deadline = time.time() + 30
                while time.time() < deadline:
                    if app.admission.depth()["inflight"] == 0:
                        break
                    time.sleep(0.05)
                assert app.admission.depth()["inflight"] == 0
                faults.reset()
                with ServerClient(url) as client:
                    assert client.lineage(
                        q=QUERY, cache="false"
                    ).status == 200
        finally:
            service.close()
