"""Prometheus text-exposition conformance for ``/v1/metrics``.

A small strict parser for the exposition format checks the invariants a
real scraper relies on: every sample series is preceded by matching
``# HELP`` and ``# TYPE`` comments, counter series end in ``_total``,
summaries expose quantile-labelled samples plus ``_sum``/``_count``,
metric names are legal, label values are properly quoted and escaped,
and every value parses as a float.  Run both against a synthetic
:class:`Observability` and against a live server scrape.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs import Observability
from repro.obs.export import escape_label_value, to_prometheus
from repro.server import ServerClient

from tests.server.conftest import boot_server

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def parse_exposition(text: str):
    """Parse (and validate) the Prometheus text format.

    Returns ``{family: {"type": ..., "help": ..., "samples": [...]}}``
    where each sample is ``(name, labels_dict, float_value)``.  Raises
    AssertionError on any conformance violation.
    """
    families = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert NAME_RE.match(name), f"line {lineno}: bad HELP name {name!r}"
            assert help_text, f"line {lineno}: empty HELP text"
            assert name not in families, f"line {lineno}: duplicate HELP {name}"
            families[name] = {"type": None, "help": help_text, "samples": []}
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "summary", "histogram"), (
                f"line {lineno}: unknown type {kind!r}"
            )
            assert name in families and families[name]["type"] is None, (
                f"line {lineno}: TYPE without preceding HELP for {name}"
            )
            families[name]["type"] = kind
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            match = SAMPLE_RE.match(line)
            assert match, f"line {lineno}: unparsable sample {line!r}"
            name = match.group("name")
            labels = {}
            if match.group("labels"):
                for pair in match.group("labels").split(","):
                    label = LABEL_RE.match(pair)
                    assert label, f"line {lineno}: bad label {pair!r}"
                    labels[label.group("name")] = label.group("value")
            value = float(match.group("value"))  # raises on garbage
            family = name
            if family not in families:
                for suffix in ("_sum", "_count"):
                    if name.endswith(suffix) and name[: -len(suffix)] in families:
                        family = name[: -len(suffix)]
                        break
            assert family in families, (
                f"line {lineno}: sample {name!r} has no HELP/TYPE"
            )
            assert families[family]["type"] is not None, (
                f"line {lineno}: sample {name!r} precedes its TYPE"
            )
            families[family]["samples"].append((name, labels, value))
    for name, family in families.items():
        assert family["samples"], f"family {name} declared but empty"
        if family["type"] == "counter":
            assert name.endswith("_total"), (
                f"counter family {name} must end in _total"
            )
            for _, _, value in family["samples"]:
                assert value >= 0 and not math.isnan(value)
        if family["type"] == "summary":
            sample_names = {s[0] for s in family["samples"]}
            assert f"{name}_sum" in sample_names
            assert f"{name}_count" in sample_names
            quantiles = [
                labels["quantile"]
                for sname, labels, _ in family["samples"]
                if sname == name
            ]
            assert quantiles == ["0.50", "0.95", "0.99"], quantiles
    return families


class TestExpositionConformance:
    def test_synthetic_snapshot_conforms(self):
        obs = Observability()
        obs.inc("server.requests", 3)
        obs.inc("weird name!?")  # must sanitize to a legal metric name
        obs.gauge("server.inflight", 2)
        for value in (0.01, 0.02, 0.03):
            obs.observe("server.request_seconds", value)
        families = parse_exposition(to_prometheus(obs))

        requests = families["repro_server_requests_total"]
        assert requests["type"] == "counter"
        assert requests["samples"][0][2] == 3.0
        assert requests["help"] == (
            "HTTP requests accepted by the provenance server"
        )
        assert "repro_weird_name___total" in families
        assert families["repro_server_inflight"]["type"] == "gauge"
        latency = families["repro_server_request_seconds"]
        assert latency["type"] == "summary"
        count = [
            v for n, _, v in latency["samples"]
            if n == "repro_server_request_seconds_count"
        ]
        assert count == [3.0]

    def test_empty_snapshot_is_valid(self):
        assert parse_exposition(to_prometheus(Observability())) == {}

    def test_live_scrape_conforms(self, tmp_path, diamond_service):
        with boot_server({"default": diamond_service}) as (url, app):
            with ServerClient(url) as client:
                assert client.lineage(
                    q="lin(<wf:out[0.1]>, {A, B})"
                ).status == 200
                scrape = client.get("/v1/metrics")
                assert scrape.status == 200
                assert "text/plain" in scrape.headers.get("content-type", "")
                families = parse_exposition(scrape.body)
        assert "repro_server_requests_total" in families
        assert "repro_server_responses_200_total" in families
        assert families["repro_server_request_seconds"]["type"] == "summary"
        # Every family carries both comments — the parser enforced HELP;
        # spot-check TYPE was set on all of them too.
        assert all(f["type"] is not None for f in families.values())


class TestLabelEscaping:
    @pytest.mark.parametrize("raw,escaped", [
        ('plain', 'plain'),
        ('say "hi"', 'say \\"hi\\"'),
        ('back\\slash', 'back\\\\slash'),
        ('multi\nline', 'multi\\nline'),
        ('all\\"\n', 'all\\\\\\"\\n'),
    ])
    def test_escape_label_value(self, raw, escaped):
        assert escape_label_value(raw) == escaped

    def test_escaped_values_survive_the_parser(self):
        value = escape_label_value('tricky "value" with \\ and \n')
        families = parse_exposition(
            "# HELP fake_metric a label escaping probe\n"
            "# TYPE fake_metric gauge\n"
            f'fake_metric{{q="{value}"}} 1\n'
        )
        [(_, labels, _)] = families["fake_metric"]["samples"]
        assert labels["q"] == value
