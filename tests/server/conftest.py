"""Shared fixtures for the server test suite.

The central helper is :func:`boot_server`: wire explicit services (or a
tenant directory) into a registry, run the real asyncio server on a
daemon thread, and hand back a live base URL — every test here talks to
actual sockets, exactly like an external client would.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

import pytest

from repro.server import (
    AdmissionController,
    ServerApp,
    ServerConfig,
    ServerThread,
    TenantRegistry,
)
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow


@contextlib.contextmanager
def boot_server(
    services: Optional[Dict[str, ProvenanceService]] = None,
    registry: Optional[TenantRegistry] = None,
    max_workers: int = 4,
    max_queue: int = 8,
    timeout: float = 30.0,
):
    """Run a server over the given tenant services; yield (url, app)."""
    config = ServerConfig(
        max_workers=max_workers,
        max_queue=max_queue,
        request_timeout=timeout,
    )
    if registry is None:
        registry = TenantRegistry(obs=config.obs)
    for tenant, service in (services or {}).items():
        registry.register_service(tenant, service)
    admission = AdmissionController(
        max_workers=max_workers,
        max_queue=max_queue,
        timeout=timeout,
        obs=config.obs,
    )
    app = ServerApp(registry, admission=admission, obs=config.obs)
    thread = ServerThread(config=config, registry=registry, app=app)
    try:
        url = thread.start()
        yield url, app
    finally:
        thread.stop()


@pytest.fixture
def diamond_service():
    """An in-memory service with the diamond workflow and two runs."""
    service = ProvenanceService()
    service.register_workflow(build_diamond_workflow())
    run_ids = [service.run("wf", {"size": 3}) for _ in range(2)]
    service.run_ids = run_ids  # convenience for tests
    yield service
    service.close()
