"""End-to-end request telemetry over real sockets.

The regression at the heart of this suite: one HTTP lineage request must
yield exactly ONE rooted span tree — server.request at the root, the
service/strategy/store spans beneath it — even when the query fans out
across worker threads.  v1 lost the parent at every thread hop and
produced orphan roots; these tests pin the v2 contract, plus the
``/v1/traces``, ``/v1/slowlog``, and ``/v1/metrics/window`` endpoints,
W3C ``traceparent`` adoption, and trace/slowlog behavior under
backpressure (429/504 requests still trace, nothing leaks).
"""

from __future__ import annotations

import contextlib
import http.client
import threading
import time
from urllib.parse import urlencode

from repro.obs.slowlog import load_slowlog, slowlog_sidecar_path
from repro.provenance.faults import FaultInjector
from repro.server import ServerClient, ServerConfig, ServerThread, TenantRegistry
from repro.server.app import default_setup
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow
from tests.server.conftest import boot_server

QUERY = "lin(<wf:out[0.1]>, {A, B})"


@contextlib.contextmanager
def boot_telemetry_server(tmp_path, **config_kwargs):
    """A path-mode server whose tenants share the server's obs handle.

    Seeds ``<tmp_path>/default.db`` with two diamond runs, then boots the
    real runtime so the config-driven telemetry wiring (sampling, sink,
    per-tenant slowlog) is exercised — unlike ``boot_server``'s pinned
    services, the lazily opened tenant here traces all the way down.
    """
    flow = build_diamond_workflow()
    seeder = ProvenanceService(str(tmp_path / "default.db"))
    seeder.register_workflow(flow)
    for _ in range(2):
        seeder.run("wf", {"size": 3})
    seeder.close()
    config = ServerConfig(tenant_root=str(tmp_path), **config_kwargs)
    registry = TenantRegistry(
        root=str(tmp_path),
        setup=default_setup((flow, None)),
        obs=config.obs,
        slowlog_threshold_ms=config.slowlog_threshold_ms,
        slowlog_ring=config.slowlog_ring,
    )
    thread = ServerThread(config=config, registry=registry)
    try:
        url = thread.start()
        yield url, thread.server
    finally:
        thread.stop()


def walk_dict(span):
    yield span
    for child in span.get("children", []):
        yield from walk_dict(child)


class TestOneRequestOneTree:
    def test_lineage_request_yields_single_rooted_tree(self, tmp_path):
        """Satellite regression: no orphan roots, ever."""
        with boot_telemetry_server(tmp_path) as (url, server):
            with ServerClient(url) as client:
                response = client.lineage(q=QUERY, workers="2")
                assert response.status == 200
                trace_id = response.trace_id
                assert trace_id is not None and len(trace_id) == 32

                fetched = client.trace(trace_id)
                assert fetched.status == 200
                assert fetched.body["trace_id"] == trace_id
                root = fetched.body["root"]
                assert root["name"] == "server.request"
                assert root["parent_id"] is None

                spans = list(walk_dict(root))
                names = [s["name"] for s in spans]
                assert "service.lineage" in names
                assert any(
                    n.startswith(("store.", "cache.")) for n in names
                ), f"no store/cache spans in tree: {names}"
                # workers=2 fans out across threads; the chunks must land
                # INSIDE this tree, not as orphan roots.
                assert "indexproj.chunk" in names
                # One trace id end to end, parent links intact.
                assert all(s["trace_id"] == trace_id for s in spans)
                for span in spans:
                    for child in span.get("children", []):
                        assert child["parent_id"] == span["span_id"]

                # The sink holds ONLY server.request roots — a thread hop
                # that lost its parent would surface as an extra root.
                recent = client.traces_recent()
                assert recent.status == 200
                assert recent.body["enabled"] is True
                roots = recent.body["traces"]
                assert roots and all(
                    r["name"] == "server.request" for r in roots
                ), [r["name"] for r in roots]

    def test_trace_headers_and_unknown_trace(self, tmp_path):
        with boot_telemetry_server(tmp_path) as (url, server):
            with ServerClient(url) as client:
                response = client.lineage(q=QUERY)
                assert response.traceparent is not None
                assert response.traceparent.startswith(
                    f"00-{response.trace_id}-"
                )
                assert response.traceparent.endswith("-01")
                missing = client.trace("f" * 32)
                assert missing.status == 404
                assert missing.error_code == "unknown-trace"


class TestTraceparentAdoption:
    def _request_with_traceparent(self, url, header):
        host = url.split("//", 1)[1]
        conn = http.client.HTTPConnection(host, timeout=30)
        try:
            conn.request(
                "GET", f"/v1/lineage/-?{urlencode({'q': QUERY})}",
                headers={"traceparent": header},
            )
            raw = conn.getresponse()
            raw.read()
            return raw.status, {k.lower(): v for k, v in raw.getheaders()}
        finally:
            conn.close()

    def test_inbound_traceparent_is_adopted(self, tmp_path):
        remote_trace = "ab" * 16
        remote_span = "cd" * 8
        with boot_telemetry_server(tmp_path) as (url, server):
            status, headers = self._request_with_traceparent(
                url, f"00-{remote_trace}-{remote_span}-01"
            )
            assert status == 200
            assert headers["x-repro-trace"] == remote_trace
            with ServerClient(url) as client:
                fetched = client.trace(remote_trace)
                assert fetched.status == 200
                root = fetched.body["root"]
                assert root["trace_id"] == remote_trace
                # Our root continues the caller's span, not a fresh trace.
                assert root["parent_id"] == remote_span

    def test_unsampled_traceparent_is_honored(self, tmp_path):
        remote_trace = "ab" * 16
        with boot_telemetry_server(tmp_path) as (url, server):
            status, headers = self._request_with_traceparent(
                url, f"00-{remote_trace}-{'cd' * 8}-00"
            )
            assert status == 200
            # The id still propagates for log correlation...
            assert headers["x-repro-trace"] == remote_trace
            assert headers["traceparent"].endswith("-00")
            # ...but the caller opted out of collection.
            with ServerClient(url) as client:
                assert client.trace(remote_trace).status == 404

    def test_malformed_traceparent_falls_back_to_fresh_trace(self, tmp_path):
        with boot_telemetry_server(tmp_path) as (url, server):
            status, headers = self._request_with_traceparent(
                url, "00-not-a-real-header-01"
            )
            assert status == 200
            trace_id = headers["x-repro-trace"]
            assert len(trace_id) == 32
            with ServerClient(url) as client:
                fetched = client.trace(trace_id)
                assert fetched.status == 200
                assert fetched.body["root"]["parent_id"] is None


class TestSampling:
    def test_stride_sampling_over_http(self, tmp_path):
        with boot_telemetry_server(tmp_path, trace_sample=0.5) as (
            url, server,
        ):
            with ServerClient(url) as client:
                ids = [
                    client.lineage(q=QUERY).trace_id for _ in range(4)
                ]
                assert all(ids)
                # Stride 2: requests 1 and 3 are kept, 2 and 4 dropped.
                assert client.trace(ids[0]).status == 200
                assert client.trace(ids[1]).status == 404
                assert client.trace(ids[2]).status == 200
                assert client.trace(ids[3]).status == 404


class TestMetricsWindow:
    def test_window_counts_recent_requests(self, tmp_path):
        with boot_telemetry_server(tmp_path) as (url, server):
            with ServerClient(url) as client:
                for _ in range(3):
                    assert client.lineage(q=QUERY).status == 200
                report = client.metrics_window("60s")
                assert report.status == 200
                body = report.body
                assert body["enabled"] is True
                assert body["requests"] >= 3
                assert body["statuses"].get("200", 0) >= 3
                assert body["rps"] > 0
                assert body["p50_ms"] is not None
                assert body["p99_ms"] >= body["p50_ms"]

    def test_window_spec_validation_and_clamping(self, tmp_path):
        with boot_telemetry_server(tmp_path) as (url, server):
            with ServerClient(url) as client:
                bad = client.metrics_window("soon")
                assert bad.status == 400
                assert bad.error_code == "bad-argument"
                # Requests wider than the retained ring are clamped, not
                # rejected.
                wide = client.metrics_window("12h")
                assert wide.status == 200
                assert wide.body["window_seconds"] <= int(
                    server.app.window.span_seconds
                )
                default = client.metrics_window()
                assert default.status == 200
                assert default.body["window_seconds"] == 60


class TestSlowlog:
    def test_slowlog_records_round_trip(self, tmp_path):
        with boot_telemetry_server(
            tmp_path, slowlog_threshold_ms=0.0
        ) as (url, server):
            with ServerClient(url) as client:
                response = client.lineage(q=QUERY, cache="false")
                assert response.status == 200
                meta = response.body["meta"]

                listed = client.slowlog()
                assert listed.status == 200
                assert listed.body["enabled"] is True
                assert listed.body["threshold_ms"] == 0.0
                assert listed.body["count"] >= 1
                record = listed.body["records"][0]
                # The journal entry is built from aggregate_stats() of the
                # same result the response serialized — they must agree.
                assert record["query"].startswith("lin(")
                assert record["strategy"] in ("indexproj", "naive")
                assert record["sql_queries"] == meta["sql_queries"]
                assert record["rows"] == meta["rows"]
                assert record["from_cache"] is meta["from_cache"]
                assert record["trace_id"] == response.trace_id
                assert record["wall_ms"] >= 0.0
                assert record["runs"] == 2

                # And the sidecar holds the same record, durably.
                sidecar = slowlog_sidecar_path(
                    str(tmp_path / "default.db")
                )
                persisted = load_slowlog(sidecar)
                assert persisted
                assert persisted[-1]["query"] == record["query"]
                assert persisted[-1]["sql_queries"] == record["sql_queries"]

    def test_slowlog_disabled_by_default(self, tmp_path):
        with boot_telemetry_server(tmp_path) as (url, server):
            with ServerClient(url) as client:
                assert client.lineage(q=QUERY).status == 200
                listed = client.slowlog()
                assert listed.status == 200
                assert listed.body == {
                    "enabled": False, "count": 0, "records": [],
                }

    def test_threshold_filters_fast_queries(self, tmp_path):
        with boot_telemetry_server(
            tmp_path, slowlog_threshold_ms=60_000.0
        ) as (url, server):
            with ServerClient(url) as client:
                assert client.lineage(q=QUERY).status == 200
                listed = client.slowlog()
                assert listed.body["enabled"] is True
                assert listed.body["count"] == 0


class TestBackpressureTelemetry:
    """Satellite: 429/504 responses still trace; nothing leaks."""

    def _slow_service(self, tmp_path, delay):
        faults = FaultInjector()
        service = ProvenanceService(
            str(tmp_path / "slow.db"), faults=faults, cache=False
        )
        service.register_workflow(build_diamond_workflow())
        service.run("wf", {"size": 2})
        faults.inject_read_delay(delay)
        return service, faults

    def test_rejected_request_traces_without_leaking(self, tmp_path):
        service, _faults = self._slow_service(tmp_path, delay=0.3)
        try:
            with boot_server(
                {"default": service}, max_workers=1, max_queue=0,
            ) as (url, app):
                sink = app.obs.tracer.sink
                barrier = threading.Barrier(2)
                done = []

                def occupy():
                    with ServerClient(url) as client:
                        barrier.wait()
                        done.append(client.lineage(q=QUERY).status)

                thread = threading.Thread(target=occupy)
                thread.start()
                barrier.wait()
                time.sleep(0.05)
                with ServerClient(url) as client:
                    rejected = client.lineage(q=QUERY)
                    assert rejected.status == 429
                    fetched = client.trace(rejected.trace_id)
                    assert fetched.status == 200
                    attrs = fetched.body["root"]["attributes"]
                    assert attrs["error"] == "queue-full"
                    assert attrs["status"] == 429
                thread.join(timeout=30)
                assert done == [200]
                # Exactly one emitted trace per request handled — a
                # refused admission must not leak (or drop) sink entries.
                deadline = time.time() + 10
                while time.time() < deadline:
                    # occupy + rejected + the /v1/traces fetch
                    if sink.emitted >= 3:
                        break
                    time.sleep(0.02)
                assert sink.emitted == 3
                assert app.admission.depth()["inflight"] == 0
        finally:
            service.close()

    def test_timed_out_request_leaves_truncated_trace(self, tmp_path):
        service, faults = self._slow_service(tmp_path, delay=0.4)
        try:
            with boot_server(
                {"default": service}, max_workers=1, max_queue=0,
                timeout=0.1,
            ) as (url, app):
                with ServerClient(url) as client:
                    response = client.lineage(q=QUERY)
                    assert response.status == 504
                    # The trace is available immediately — truncated to
                    # whatever had finished at the deadline — and records
                    # the timeout verdict.
                    fetched = client.trace(response.trace_id)
                    assert fetched.status == 200
                    attrs = fetched.body["root"]["attributes"]
                    assert attrs["error"] == "deadline-exceeded"
                    assert attrs["status"] == 504

                # The abandoned worker drains and frees its slot; its late
                # spans must not surface as new sink roots.
                deadline = time.time() + 30
                while time.time() < deadline:
                    if app.admission.depth()["inflight"] == 0:
                        break
                    time.sleep(0.05)
                assert app.admission.depth()["inflight"] == 0
                sink = app.obs.tracer.sink
                assert all(
                    root.name == "server.request"
                    for root in sink.recent(limit=len(sink))
                )
                faults.reset()
                with ServerClient(url) as client:
                    assert client.lineage(q=QUERY).status == 200
        finally:
            service.close()
