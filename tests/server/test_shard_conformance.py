"""Sharded-tenant conformance: the backend is invisible over the wire.

A tenant whose :class:`~repro.service.ProvenanceService` sits on a
:class:`~repro.storage.ShardedStore` must answer ``GET /v1/lineage``
byte-identically (:func:`repro.server.codec.canonical_bytes`) to both
the in-process service result and a sibling tenant holding the same
traces in a single-file store — across strategies and batching.  The
``/v1/stats`` endpoint additionally has to expose the per-shard rollup
so operators can see the fan-out topology behind a tenant.
"""

from __future__ import annotations

import random

import pytest

from repro.provenance.capture import capture_run
from repro.server import ServerClient, canonical_bytes, encode_answer
from repro.service import ProvenanceService
from repro.storage import ShardedStore

from tests.conftest import estimated_instances, make_random_workflow
from tests.properties.test_prop_agreement import random_query
from tests.server.conftest import boot_server

WORKFLOW_COUNT = 5
QUERIES_PER_CASE = 2
RUNS_PER_CASE = 3
NUM_SHARDS = 3

STRATEGIES = ("indexproj", "naive")
BATCHING = (False, True)


def _generate_cases():
    cases = []
    seed = 0
    while len(cases) < WORKFLOW_COUNT and seed < 500:
        case = make_random_workflow(seed)
        seed += 1
        if estimated_instances(case) > 250:
            continue
        captured = [
            capture_run(case.flow, case.inputs, run_id=f"run-{i}")
            for i in range(RUNS_PER_CASE)
        ]
        rng = random.Random(case.seed * 7919 + 41)
        queries = [
            random_query(case, captured[0], rng)
            for _ in range(QUERIES_PER_CASE)
        ]
        cases.append((f"case{case.seed}", case, captured, queries))
    assert len(cases) == WORKFLOW_COUNT
    return cases


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """One server; per workflow a single-file and a sharded tenant
    holding identical captured traces."""
    root = tmp_path_factory.mktemp("shard-conformance")
    cases = _generate_cases()
    services = {}
    for tenant, case, captured, _queries in cases:
        single = ProvenanceService(str(root / f"{tenant}.db"))
        sharded = ProvenanceService(
            store=ShardedStore(
                str(root / f"{tenant}-shards"), num_shards=NUM_SHARDS
            ),
            cache=True,
        )
        for service in (single, sharded):
            service.register_workflow(case.flow)
            for cap in captured:
                service.store.insert_trace(cap.trace)
        services[tenant] = single
        services[f"{tenant}-sharded"] = sharded
    try:
        with boot_server(services, max_workers=4, max_queue=32) as (url, _app):
            yield url, cases, services
    finally:
        for service in services.values():
            service.close()


def _query_params(query):
    params = {}
    if len(query.index):
        params["index"] = query.index.encode()
    if query.focus:
        params["focus"] = ",".join(query.focus)
    return params


def _http_answer(client, query, **params):
    response = client.lineage(
        run="-", node=query.node, port=query.port,
        **_query_params(query), **params,
    )
    assert response.status == 200, response.body
    return response.body


class TestShardedTenantConformance:
    def test_http_matches_inprocess_oracle(self, world):
        """Sharded tenant over HTTP == in-process single-file service."""
        url, cases, services = world
        compared = 0
        for tenant, _case, _captured, queries in cases:
            oracle = services[tenant]
            with ServerClient(url, tenant=f"{tenant}-sharded") as client:
                for query in queries:
                    for strategy in STRATEGIES:
                        for batch in BATCHING:
                            http = _http_answer(
                                client, query,
                                strategy=strategy,
                                batch="true" if batch else "false",
                                cache="false",
                            )
                            expected = oracle.lineage(
                                query, strategy=strategy,
                                batch=batch, cache=False,
                            )
                            assert canonical_bytes(
                                http["answer"]
                            ) == canonical_bytes(encode_answer(expected)), (
                                f"{tenant}-sharded: {query} diverged under "
                                f"strategy={strategy} batch={batch}"
                            )
                    compared += 1
        assert compared >= WORKFLOW_COUNT * QUERIES_PER_CASE

    def test_http_matches_single_file_tenant_over_http(self, world):
        """Same wire protocol, two backends, one answer."""
        url, cases, _services = world
        for tenant, _case, _captured, queries in cases:
            with ServerClient(url, tenant=tenant) as single_client, \
                    ServerClient(url, tenant=f"{tenant}-sharded") as shard_client:
                for query in queries:
                    single = _http_answer(single_client, query, cache="false")
                    sharded = _http_answer(shard_client, query, cache="false")
                    assert canonical_bytes(
                        sharded["answer"]
                    ) == canonical_bytes(single["answer"])

    def test_warm_cache_repeat_identical_on_sharded_tenant(self, world):
        """The result cache composes with composed shard generations."""
        url, cases, _services = world
        warmed = 0
        for tenant, _case, _captured, queries in cases:
            with ServerClient(url, tenant=f"{tenant}-sharded") as client:
                for query in queries:
                    first = _http_answer(client, query, cache="true")
                    second = _http_answer(client, query, cache="true")
                    assert canonical_bytes(
                        second["answer"]
                    ) == canonical_bytes(first["answer"])
                    assert second["meta"]["sql_queries"] == 0
                    if second["meta"]["from_cache"]:
                        warmed += 1
        assert warmed >= WORKFLOW_COUNT

    def test_stats_exposes_per_shard_rollup(self, world):
        """``/v1/stats`` carries num_shards and one entry per shard whose
        run counts sum to the flat rollup."""
        url, cases, services = world
        tenant = cases[0][0]
        with ServerClient(url, tenant=f"{tenant}-sharded") as client:
            response = client.get("/v1/stats")
        assert response.status == 200, response.body
        store = response.body["store"]
        assert store["num_shards"] == NUM_SHARDS
        shards = store["shards"]
        assert len(shards) == NUM_SHARDS
        assert [entry["shard"] for entry in shards] == list(range(NUM_SHARDS))
        assert sum(entry["runs"] for entry in shards) == store["runs"]
        assert sum(entry["records"] for entry in shards) == store["records"]
        assert store["runs"] == RUNS_PER_CASE
        for entry in shards:
            assert entry["path"]
        # The single-file sibling reports no shard topology.
        with ServerClient(url, tenant=tenant) as client:
            flat = client.get("/v1/stats")
        assert flat.status == 200
        assert "shards" not in flat.body["store"]
