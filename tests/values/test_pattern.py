"""Tests for index patterns (repro.values.pattern)."""

import pytest

from repro.values.index import Index
from repro.values.pattern import IndexPattern


class TestConstruction:
    def test_mixed_positions(self):
        pattern = IndexPattern(0, None, 2)
        assert pattern.positions == (0, None, 2)
        assert len(pattern) == 3

    def test_from_index_is_fully_fixed(self):
        pattern = IndexPattern.from_index(Index(1, 2))
        assert pattern.is_fully_fixed
        assert pattern.positions == (1, 2)

    def test_wildcards(self):
        pattern = IndexPattern.wildcards(3)
        assert pattern.positions == (None, None, None)
        assert not pattern.is_fully_fixed

    def test_of_iterable(self):
        assert IndexPattern.of([None, 5]) == IndexPattern(None, 5)

    def test_negative_fixed_rejected(self):
        with pytest.raises(ValueError):
            IndexPattern(-1)

    def test_encode(self):
        assert IndexPattern(0, None, 2).encode() == "0.*.2"
        assert IndexPattern().encode() == ""

    def test_equality_and_hash(self):
        assert IndexPattern(1, None) == IndexPattern(1, None)
        assert IndexPattern(1, None) != IndexPattern(1, 2)
        assert len({IndexPattern(1), IndexPattern(1)}) == 1


class TestFixedPrefix:
    def test_leading_fixed_run(self):
        assert IndexPattern(3, 4, None, 5).fixed_prefix() == Index(3, 4)

    def test_fully_fixed(self):
        assert IndexPattern(3, 4).fixed_prefix() == Index(3, 4)

    def test_leading_wildcard(self):
        assert IndexPattern(None, 4).fixed_prefix() == Index()


class TestMatching:
    def test_exact(self):
        assert IndexPattern(0, 1).matches(Index(0, 1))
        assert not IndexPattern(0, 1).matches(Index(0, 2))

    def test_wildcard_positions_free(self):
        assert IndexPattern(0, None).matches(Index(0, 7))
        assert IndexPattern(None, 2).matches(Index(9, 2))
        assert not IndexPattern(None, 2).matches(Index(9, 3))

    def test_coarser_record_matches(self):
        # A shorter recorded index agrees on the overlap.
        assert IndexPattern(0, None).matches(Index(0))
        assert IndexPattern(0, 1).matches(Index())

    def test_finer_record_matches(self):
        assert IndexPattern(0, None).matches(Index(0, 5, 9))

    def test_empty_pattern_matches_everything(self):
        for index in (Index(), Index(3), Index(1, 2, 3)):
            assert IndexPattern().matches(index)


class TestPlacement:
    def test_place_fragment(self):
        base = IndexPattern.wildcards(3)
        placed = base.place_fragment(3, 1, IndexPattern(7))
        assert placed == IndexPattern(None, 7, None)

    def test_place_overflow_clipped(self):
        base = IndexPattern.wildcards(2)
        placed = base.place_fragment(2, 1, IndexPattern(7, 8))
        assert placed == IndexPattern(None, 7)

    def test_place_at_zero(self):
        base = IndexPattern.wildcards(2)
        assert base.place_fragment(2, 0, IndexPattern(4, 5)) == IndexPattern(4, 5)

    def test_head_and_slice(self):
        pattern = IndexPattern(0, None, 2, 3)
        assert pattern.head(2) == IndexPattern(0, None)
        assert pattern.head(9) == pattern
        assert pattern.slice(1, 2) == IndexPattern(None, 2)
