"""Tests for the port type algebra (repro.values.types)."""

import pytest

from repro.values.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    STRING,
    BaseType,
    ListType,
    ValueType,
    infer_type,
)


class TestBaseType:
    def test_depth_is_zero(self):
        assert STRING.depth == 0

    def test_equality_by_name(self):
        assert BaseType("string") == STRING
        assert BaseType("string") != BaseType("integer")

    def test_hashable(self):
        assert len({BaseType("x"), BaseType("x"), BaseType("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            BaseType("")

    def test_base_of_base_is_itself(self):
        assert STRING.base() is STRING

    def test_element_type_raises(self):
        with pytest.raises(TypeError):
            STRING.element_type


class TestListType:
    def test_depth_counts_constructors(self):
        assert ListType(STRING).depth == 1
        assert ListType(ListType(STRING)).depth == 2

    def test_element_type(self):
        assert ListType(STRING).element_type == STRING

    def test_base_unwraps_all_levels(self):
        assert ListType(ListType(INTEGER)).base() == INTEGER

    def test_listify(self):
        assert STRING.listify(2) == ListType(ListType(STRING))
        assert STRING.listify(0) == STRING

    def test_listify_negative_raises(self):
        with pytest.raises(ValueError):
            STRING.listify(-1)

    def test_equality(self):
        assert ListType(STRING) == ListType(STRING)
        assert ListType(STRING) != ListType(INTEGER)
        assert ListType(STRING) != STRING

    def test_non_type_element_rejected(self):
        with pytest.raises(TypeError):
            ListType("string")


class TestCodec:
    def test_encode_base(self):
        assert STRING.encode() == "string"

    def test_encode_nested(self):
        assert ListType(ListType(STRING)).encode() == "list(list(string))"

    def test_decode_base(self):
        assert ValueType.decode("integer") == INTEGER

    def test_decode_nested(self):
        assert ValueType.decode("list(list(string))") == STRING.listify(2)

    def test_decode_strips_whitespace(self):
        assert ValueType.decode("  list( string )  ") == ListType(STRING)

    def test_roundtrip(self):
        for value_type in (STRING, INTEGER.listify(1), FLOAT.listify(3)):
            assert ValueType.decode(value_type.encode()) == value_type

    def test_decode_rejects_malformed(self):
        for text in ("", "list(", "list()", "list(string))"):
            with pytest.raises(ValueError):
                ValueType.decode(text)


class TestInference:
    def test_atomic_string(self):
        assert infer_type("x") == STRING

    def test_bool_before_int(self):
        # bool is a subclass of int; inference must prefer boolean.
        assert infer_type(True) == BOOLEAN
        assert infer_type(3) == INTEGER

    def test_float(self):
        assert infer_type(2.5) == FLOAT

    def test_nested_list(self):
        assert infer_type([["a"], ["b"]]).encode() == "list(list(string))"

    def test_empty_list_defaults_to_string(self):
        assert infer_type([]) == ListType(STRING)

    def test_mixed_leaf_types_rejected(self):
        with pytest.raises(TypeError):
            infer_type(["a", 1])

    def test_unknown_python_type_uses_class_name(self):
        class Weird:
            pass

        assert infer_type(Weird()).base().name == "Weird"
