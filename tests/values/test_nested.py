"""Tests for nested value operations (repro.values.nested)."""

import pytest

from repro.values import nested
from repro.values.index import Index
from repro.values.nested import MalformedValueError


class TestDepth:
    def test_atomic_values_have_depth_zero(self):
        for value in ("a", 1, 1.5, None, True, (1, 2)):
            assert nested.depth(value) == 0

    def test_flat_list(self):
        assert nested.depth(["a", "b"]) == 1

    def test_nested_list(self):
        assert nested.depth([["foo", "bar"], ["red", "fox"]]) == 2

    def test_empty_list_depth_is_one(self):
        assert nested.depth([]) == 1

    def test_heterogeneous_depth_rejected(self):
        with pytest.raises(MalformedValueError):
            nested.depth(["a", ["b"]])

    def test_deeply_nested(self):
        assert nested.depth([[[["x"]]]]) == 4

    def test_tuples_are_atoms(self):
        # The engine threads argument packs as tuples; they must not read
        # as collections.
        assert nested.depth([("a", "b")]) == 1


class TestHomogeneity:
    def test_homogeneous(self):
        assert nested.is_homogeneous([["a"], ["b", "c"]])

    def test_inhomogeneous(self):
        assert not nested.is_homogeneous([["a"], "b"])

    def test_atoms_are_homogeneous(self):
        assert nested.is_homogeneous("plain")


class TestGetSet:
    def test_get_with_empty_index_returns_value(self):
        value = [["x"]]
        assert nested.get_element(value, Index()) is value

    def test_get_element(self):
        value = [["foo", "bar"], ["red", "fox"]]
        assert nested.get_element(value, Index(0, 1)) == "bar"
        assert nested.get_element(value, Index(1)) == ["red", "fox"]

    def test_get_out_of_range(self):
        with pytest.raises(IndexError):
            nested.get_element(["a"], Index(3))

    def test_get_below_atom_raises(self):
        with pytest.raises(MalformedValueError):
            nested.get_element(["a"], Index(0, 0))

    def test_set_returns_new_value(self):
        value = [["a", "b"]]
        updated = nested.set_element(value, Index(0, 1), "B")
        assert updated == [["a", "B"]]
        assert value == [["a", "b"]]  # original untouched

    def test_set_with_empty_index_replaces_whole(self):
        assert nested.set_element(["a"], Index(), "new") == "new"

    def test_set_out_of_range(self):
        with pytest.raises(IndexError):
            nested.set_element(["a"], Index(1), "x")

    def test_set_below_atom_raises(self):
        with pytest.raises(MalformedValueError):
            nested.set_element("atom", Index(0), "x")


class TestEnumeration:
    def test_enumerate_leaves_order(self):
        value = [["a"], ["b", "c"]]
        assert list(nested.enumerate_leaves(value)) == [
            (Index(0, 0), "a"),
            (Index(1, 0), "b"),
            (Index(1, 1), "c"),
        ]

    def test_enumerate_atom(self):
        assert list(nested.enumerate_leaves("x")) == [(Index(), "x")]

    def test_enumerate_empty_list(self):
        assert list(nested.enumerate_leaves([])) == []

    def test_iter_at_depth_zero(self):
        value = ["a", "b"]
        assert list(nested.iter_at_depth(value, 0)) == [(Index(), value)]

    def test_iter_at_depth_one(self):
        assert list(nested.iter_at_depth([["a"], ["b"]], 1)) == [
            (Index(0), ["a"]),
            (Index(1), ["b"]),
        ]

    def test_iter_at_depth_two(self):
        pairs = list(nested.iter_at_depth([["a", "b"], ["c"]], 2))
        assert pairs == [
            (Index(0, 0), "a"),
            (Index(0, 1), "b"),
            (Index(1, 0), "c"),
        ]

    def test_iter_below_atom_raises(self):
        with pytest.raises(MalformedValueError):
            list(nested.iter_at_depth("x", 1))

    def test_iter_negative_levels_raises(self):
        with pytest.raises(ValueError):
            list(nested.iter_at_depth(["x"], -1))

    def test_get_element_agrees_with_iteration(self):
        value = [["a", "b"], ["c", "d"]]
        for index, element in nested.iter_at_depth(value, 2):
            assert nested.get_element(value, index) == element


class TestFlattenWrap:
    def test_flatten_one_level(self):
        assert nested.flatten([["a", "b"], ["c"]]) == ["a", "b", "c"]

    def test_flatten_two_levels(self):
        assert nested.flatten([[["a"], ["b"]], [["c"]]], 2) == ["a", "b", "c"]

    def test_flatten_zero_levels_is_identity(self):
        value = [["a"]]
        assert nested.flatten(value, 0) is value

    def test_flatten_atom_raises(self):
        with pytest.raises(MalformedValueError):
            nested.flatten("a")

    def test_flatten_too_shallow_raises(self):
        with pytest.raises(MalformedValueError):
            nested.flatten(["a", "b"])

    def test_flatten_negative_raises(self):
        with pytest.raises(ValueError):
            nested.flatten([["a"]], -1)

    def test_wrap(self):
        assert nested.wrap("a", 0) == "a"
        assert nested.wrap("a", 1) == ["a"]
        assert nested.wrap("a", 3) == [[["a"]]]

    def test_wrap_negative_raises(self):
        with pytest.raises(ValueError):
            nested.wrap("a", -1)

    def test_wrap_then_flatten_roundtrip(self):
        value = ["x", "y"]
        assert nested.flatten(nested.wrap(value, 1)) == value


class TestShapeAndCounts:
    def test_shape(self):
        assert nested.shape([["x"], ["y", "z"]]) == [[None], [None, None]]

    def test_shape_of_atom(self):
        assert nested.shape("a") is None

    def test_count_leaves(self):
        assert nested.count_leaves("a") == 1
        assert nested.count_leaves([["a", "b"], ["c"]]) == 3
        assert nested.count_leaves([]) == 0
