"""Tests for index paths (repro.values.index)."""

import pytest

from repro.values.index import Index


class TestConstruction:
    def test_empty_index(self):
        assert Index().is_empty
        assert len(Index()) == 0
        assert Index().path == ()

    def test_positional_construction(self):
        assert Index(1, 2, 3).path == (1, 2, 3)

    def test_of_accepts_iterables(self):
        assert Index.of([4, 5]) == Index(4, 5)
        assert Index.of(range(3)) == Index(0, 1, 2)

    def test_empty_singleton_semantics(self):
        assert Index.empty() == Index()
        assert Index.empty().is_empty

    def test_negative_positions_rejected(self):
        with pytest.raises(ValueError):
            Index(1, -2)

    def test_positions_coerced_to_int(self):
        assert Index(True, 2).path == (1, 2)


class TestCodec:
    def test_encode_empty(self):
        assert Index().encode() == ""

    def test_encode_path(self):
        assert Index(1, 0, 7).encode() == "1.0.7"

    def test_decode_empty(self):
        assert Index.decode("") == Index()

    def test_decode_path(self):
        assert Index.decode("2.3") == Index(2, 3)

    def test_roundtrip(self):
        for index in (Index(), Index(0), Index(5, 0, 12)):
            assert Index.decode(index.encode()) == index

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            Index.decode("1.x.2")

    def test_decode_rejects_trailing_dot(self):
        with pytest.raises(ValueError):
            Index.decode("1.")


class TestSlicing:
    def test_slice_basic(self):
        assert Index(1, 2, 3, 4).slice(1, 2) == Index(2, 3)

    def test_slice_zero_length_is_empty(self):
        assert Index(1, 2).slice(1, 0) == Index()

    def test_slice_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Index(1, 2).slice(1, 5)

    def test_slice_negative_raises(self):
        with pytest.raises(ValueError):
            Index(1, 2).slice(-1, 1)

    def test_head(self):
        assert Index(7, 8, 9).head(2) == Index(7, 8)

    def test_tail_from(self):
        assert Index(7, 8, 9).tail_from(1) == Index(8, 9)
        assert Index(7, 8, 9).tail_from(3) == Index()


class TestOperators:
    def test_concatenation(self):
        assert Index(1) + Index(2, 3) == Index(1, 2, 3)

    def test_concatenation_with_empty_is_identity(self):
        p = Index(4, 5)
        assert p + Index() == p
        assert Index() + p == p

    def test_add_non_index_not_supported(self):
        with pytest.raises(TypeError):
            Index(1) + (2,)

    def test_extended(self):
        assert Index(1).extended(2) == Index(1, 2)

    def test_starts_with(self):
        assert Index(1, 2, 3).starts_with(Index(1, 2))
        assert Index(1, 2).starts_with(Index(1, 2))
        assert not Index(1, 2).starts_with(Index(2))
        assert Index(1).starts_with(Index())

    def test_ordering_is_lexicographic(self):
        assert Index(1) < Index(1, 0)
        assert Index(0, 9) < Index(1)
        assert Index(2) <= Index(2)

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {Index(1, 2): "a", Index(): "b"}
        assert mapping[Index(1, 2)] == "a"
        assert mapping[Index()] == "b"

    def test_iteration_and_getitem(self):
        index = Index(3, 1, 4)
        assert list(index) == [3, 1, 4]
        assert index[1] == 1

    def test_equality_excludes_other_types(self):
        assert Index(1) != (1,)
        assert Index() != ""

    def test_repr(self):
        assert repr(Index(1, 2)) == "Index(1, 2)"
