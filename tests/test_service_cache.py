"""Service-level lineage caching: warm repeats, invalidation, controls.

Pins the PR's headline acceptance claim at the API boundary: a repeated
multi-run lineage query on an unchanged store is answered from the
result cache with **zero** trace-store reads — asserted both through
the per-result ``StoreStats`` and through the ``store.reads`` counter
of an enabled ``repro.obs`` handle.
"""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig
from repro.obs import Observability
from repro.query.base import LineageQuery
from repro.service import ProvenanceService

from tests.conftest import build_diamond_workflow


def _query():
    return LineageQuery.create("wf", "out", [1, 1], focus=["GEN", "A", "B"])


@pytest.fixture
def service():
    obs = Observability()
    svc = ProvenanceService(obs=obs)
    svc.register_workflow(build_diamond_workflow())
    for _ in range(3):
        svc.run("wf", {"size": 2})
    yield svc
    svc.close()


class TestWarmRepeats:
    def test_warm_repeat_zero_store_reads(self, service):
        cold = service.lineage(_query())
        assert cold.from_cache is False
        reads_before = service.obs.counter_value("store.reads")
        warm = service.lineage(_query())
        assert warm.from_cache is True
        assert service.obs.counter_value("store.reads") == reads_before
        assert all(r.stats.queries == 0 for r in warm.per_run.values())
        assert warm.binding_keys_by_run() == cold.binding_keys_by_run()
        counters = service.metrics_snapshot()["counters"]
        assert counters["cache.result_hits"] == 1

    def test_warm_result_carries_generation_vector(self, service):
        service.lineage(_query())
        warm = service.lineage(_query())
        scope = service.runs_of("wf")
        assert warm.generations == service.store.generation_vector(scope)

    def test_execution_modes_share_one_entry(self, service):
        sequential = service.lineage(_query())
        batched = service.lineage(_query(), batched=True)
        parallel = service.lineage(_query(), workers=4)
        assert batched.from_cache and parallel.from_cache
        assert (
            batched.binding_keys_by_run()
            == parallel.binding_keys_by_run()
            == sequential.binding_keys_by_run()
        )

    def test_naive_and_indexproj_warm_separately_but_agree(self, service):
        ip_cold = service.lineage(_query())
        ni_cold = service.lineage(_query(), strategy="naive")
        assert ni_cold.from_cache is False  # different strategy, own entry
        ni_warm = service.lineage(_query(), strategy="naive")
        assert ni_warm.from_cache is True
        assert ni_warm.binding_keys_by_run() == ip_cold.binding_keys_by_run()

    def test_auto_strategy_warms_concrete_entry(self, service):
        auto = service.lineage(_query(), strategy="auto")
        assert auto.from_cache is False
        # auto resolves to indexproj here, so the direct call is warm.
        warm = service.lineage(_query())
        assert warm.from_cache is True

    def test_lineage_many_shares_cache(self, service):
        results = service.lineage_many([_query(), _query(), _query()])
        repeat = service.lineage_many([_query()])
        assert repeat[0].from_cache is True
        assert all(
            r.binding_keys_by_run() == results[0].binding_keys_by_run()
            for r in results + repeat
        )


class TestInvalidation:
    def test_new_run_invalidates_default_scope(self, service):
        first = service.lineage(_query())
        service.run("wf", {"size": 2})
        after = service.lineage(_query())
        assert after.from_cache is False
        assert len(after.per_run) == len(first.per_run) + 1

    def test_pinned_scope_survives_unrelated_ingest(self, service):
        scope = service.runs_of("wf")[:2]
        service.lineage(_query(), runs=scope)
        service.run("wf", {"size": 2})  # new run: not in the pinned scope
        warm = service.lineage(_query(), runs=scope)
        assert warm.from_cache is True

    def test_delete_run_invalidates_containing_scopes(self, service):
        scope = service.runs_of("wf")
        service.lineage(_query(), runs=scope)
        service.store.delete_run(scope[0])
        result = service.lineage(_query(), runs=scope[1:])
        assert result.from_cache is False  # never cached for that scope
        again = service.lineage(_query(), runs=scope[1:])
        assert again.from_cache is True

    def test_invalidate_caches_drops_everything(self, service):
        service.lineage(_query())
        dropped = service.invalidate_caches()
        assert dropped["result"] >= 1
        assert dropped["trace"] >= 1
        assert service.lineage(_query()).from_cache is False


class TestControls:
    def test_per_call_bypass(self, service):
        service.lineage(_query())
        bypass = service.lineage(_query(), cache=False)
        assert bypass.from_cache is False
        # Bypass does not populate either: a bypassed cold call leaves
        # existing entries alone but never writes new ones.
        other = LineageQuery.create("wf", "out", [0, 0], focus=["GEN", "A"])
        service.lineage(other, cache=False)
        assert service.lineage(other).from_cache is False

    def test_disabled_service(self):
        svc = ProvenanceService(cache=False)
        svc.register_workflow(build_diamond_workflow())
        svc.run("wf", {"size": 2})
        assert svc.lineage(_query()).from_cache is False
        assert svc.lineage(_query()).from_cache is False
        stats = svc.cache_stats()
        assert stats["enabled"] is False
        assert stats["result"] == {} and stats["trace"] == {}
        assert svc.invalidate_caches() == {
            "result": 0, "trace": 0, "plans": 1,
        }
        svc.close()

    def test_cache_config_tuning(self):
        config = CacheConfig(result_entries=1, trace_entries=8)
        svc = ProvenanceService(cache=config)
        svc.register_workflow(build_diamond_workflow())
        svc.run("wf", {"size": 2})
        q1 = _query()
        q2 = LineageQuery.create("wf", "out", [0, 0], focus=["GEN", "A"])
        svc.lineage(q1)
        svc.lineage(q2)  # evicts q1's entry (result_entries=1)
        assert svc.lineage(q2).from_cache is True
        assert svc.lineage(q1).from_cache is False
        assert svc.cache_stats()["result"]["evictions"] >= 1
        svc.close()

    def test_cache_config_of_rejects_garbage(self):
        with pytest.raises(TypeError):
            CacheConfig.of("yes")

    def test_cache_stats_shape(self, service):
        service.lineage(_query())
        service.lineage(_query())
        stats = service.cache_stats()
        assert stats["enabled"] is True
        assert stats["result"]["hits"] == 1
        assert stats["result"]["misses"] == 1
        assert stats["trace"]["entries"] > 0
        assert stats["config"]["result_entries"] == 256


class TestExplainPlan:
    def test_cache_state_cold_then_warm(self, service):
        assert service.explain_plan(_query()).cache_state == "cold"
        service.lineage(_query())
        plan = service.explain_plan(_query())
        assert plan.cache_state == "warm"
        assert "result cache: warm" in plan.summary()

    def test_cache_state_none_when_disabled(self):
        svc = ProvenanceService(cache=False)
        svc.register_workflow(build_diamond_workflow())
        svc.run("wf", {"size": 2})
        plan = svc.explain_plan(_query())
        assert plan.cache_state is None
        assert "result cache" not in plan.summary()
        svc.close()

    def test_probe_does_not_perturb_counters(self, service):
        service.lineage(_query())
        before = service.cache_stats()["result"]
        service.explain_plan(_query())
        after = service.cache_stats()["result"]
        assert (after["hits"], after["misses"]) == (
            before["hits"], before["misses"]
        )


class TestRunListMemo:
    def test_runs_of_is_memoized_and_refreshed(self, service):
        first = service.runs_of("wf")
        reads_before = service.obs.counter_value("store.reads")
        assert service.runs_of("wf") == first
        assert service.obs.counter_value("store.reads") == reads_before
        new_run = service.run("wf", {"size": 2})
        assert service.runs_of("wf") == first + [new_run]

    def test_returned_lists_are_copies(self, service):
        runs = service.runs_of("wf")
        runs.append("bogus")
        assert "bogus" not in service.runs_of("wf")


class TestRedefinedWorkflow:
    def test_reregistering_same_definition_keeps_cache_usable(self, service):
        service.lineage(_query())
        service.register_workflow(build_diamond_workflow())
        assert service.lineage(_query()).from_cache is True

    def test_structurally_different_definition_misses(self):
        """A changed workflow under the same name must never be served
        answers computed for the old definition (fingerprint keying)."""
        from repro.workflow.builder import DataflowBuilder

        svc = ProvenanceService()
        svc.register_workflow(build_diamond_workflow())
        svc.run("wf", {"size": 2})
        svc.lineage(_query())
        changed = (
            DataflowBuilder("wf")
            .input("size", "integer")
            .output("out", "list(list(string))")
            .processor(
                "GEN",
                inputs=[("size", "integer")],
                outputs=[("list", "list(string)")],
                operation="list_generator",
                config={"out": "list"},
            )
            .processor(
                "A",
                inputs=[("x", "string")],
                outputs=[("y", "string")],
                operation="tag",
                config={"suffix": "-a2"},
            )
            .processor(
                "B",
                inputs=[("x", "string")],
                outputs=[("y", "string")],
                operation="tag",
                config={"suffix": "-b2"},
            )
            .processor(
                "F",
                inputs=[("a", "string"), ("b", "string")],
                outputs=[("y", "string")],
                operation="concat_pair",
            )
            .arcs(
                ("wf:size", "GEN:size"),
                ("GEN:list", "A:x"),
                ("GEN:list", "B:x"),
                ("A:y", "F:a"),
                ("B:y", "F:b"),
                ("F:y", "wf:out"),
            )
            .build()
        )
        svc.register_workflow(changed)
        assert svc.lineage(_query()).from_cache is False
        svc.close()
