"""Tests for the fluent builder (repro.workflow.builder)."""

import pytest

from repro.workflow.builder import DataflowBuilder, linear_chain, parse_ref
from repro.workflow.model import PortRef, PortSpec, WorkflowError
from repro.values.types import STRING


class TestParseRef:
    def test_parse(self):
        assert parse_ref("P:x") == PortRef("P", "x")

    def test_port_containing_colon_keeps_first_split(self):
        assert parse_ref("P:x:y") == PortRef("P", "x:y")

    def test_missing_colon_rejected(self):
        with pytest.raises(WorkflowError):
            parse_ref("Px")

    def test_empty_parts_rejected(self):
        for text in (":x", "P:", ":"):
            with pytest.raises(WorkflowError):
                parse_ref(text)


class TestBuilder:
    def test_minimal_workflow(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .output("b", "list(string)")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:b")
            .build()
        )
        assert flow.name == "wf"
        assert flow.processor("P").operation == "identity"
        assert len(flow.arcs) == 2

    def test_port_decl_accepts_portspec(self):
        flow = (
            DataflowBuilder("wf")
            .processor("P", inputs=[PortSpec("x", STRING)], operation="identity")
            .build()
        )
        assert flow.processor("P").input_port("x").type == STRING

    def test_arcs_bulk(self):
        flow = (
            DataflowBuilder("wf")
            .input("a")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .processor("Q", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arcs(("wf:a", "P:x"), ("P:y", "Q:x"))
            .build()
        )
        assert len(flow.arcs) == 2

    def test_chain_helper(self):
        flow = (
            DataflowBuilder("wf")
            .input("a")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .chain("wf:a", "P:x")
            .build()
        )
        assert flow.incoming_arc(PortRef("P", "x")).source == PortRef("wf", "a")

    def test_invalid_arc_surfaces_at_build(self):
        builder = DataflowBuilder("wf").arc("wf:a", "P:x")
        with pytest.raises(WorkflowError):
            builder.build()

    def test_iteration_strategy_passthrough(self):
        flow = (
            DataflowBuilder("wf")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity", iteration="dot")
            .build()
        )
        assert flow.processor("P").iteration == "dot"

    def test_config_passthrough(self):
        flow = (
            DataflowBuilder("wf")
            .processor("P", operation="constant", config={"value": 42})
            .build()
        )
        assert flow.processor("P").config == {"value": 42}


class TestLinearChain:
    def test_structure(self):
        flow = linear_chain("wf", 3, "identity")
        assert [p.name for p in flow.processors] == ["step0", "step1", "step2"]
        # in -> step0 -> step1 -> step2 -> out: 4 arcs
        assert len(flow.arcs) == 4

    def test_endpoints_are_wired(self):
        flow = linear_chain("wf", 2, "identity", input_name="src",
                            output_name="dst")
        assert flow.incoming_arc(PortRef("step0", "x")).source == PortRef("wf", "src")
        assert flow.incoming_arc(PortRef("wf", "dst")).source == PortRef("step1", "y")

    def test_length_one(self):
        flow = linear_chain("wf", 1, "identity")
        assert len(flow.processors) == 1

    def test_zero_length_rejected(self):
        with pytest.raises(WorkflowError):
            linear_chain("wf", 0, "identity")

    def test_executes_end_to_end(self):
        from repro.engine.executor import run_workflow

        flow = linear_chain("wf", 3, "tag", port_type="string")
        result = run_workflow(flow, {"in": "x"})
        assert result.outputs["out"] == "x'''"
