"""Tests for GraphViz export (repro.workflow.dot)."""

from repro.workflow.dot import to_dot

from tests.conftest import build_diamond_workflow


class TestDotExport:
    def test_contains_every_processor(self):
        dot = to_dot(build_diamond_workflow())
        for name in ("GEN", "A", "B", "F"):
            assert f'"{name}"' in dot

    def test_contains_workflow_ports(self):
        dot = to_dot(build_diamond_workflow())
        assert '"in:size"' in dot
        assert '"out:out"' in dot

    def test_arcs_rendered(self):
        dot = to_dot(build_diamond_workflow())
        assert '"GEN" -> "A"' in dot
        assert '"F" -> "out:out"' in dot

    def test_highlighting_marks_focus(self):
        dot = to_dot(build_diamond_workflow(), highlight=["GEN"])
        gen_line = next(line for line in dot.splitlines() if '"GEN" [' in line)
        assert "gold" in gen_line
        a_line = next(line for line in dot.splitlines() if '"A" [' in line)
        assert "gold" not in a_line

    def test_port_labels_optional(self):
        with_ports = to_dot(build_diamond_workflow(), include_ports=True)
        without = to_dot(build_diamond_workflow(), include_ports=False)
        assert "label=" in with_ports
        assert len(without) < len(with_ports)

    def test_valid_digraph_syntax(self):
        dot = to_dot(build_diamond_workflow())
        assert dot.startswith('digraph "wf" {')
        assert dot.rstrip().endswith("}")
