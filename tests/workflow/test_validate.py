"""Tests for workflow validation (repro.workflow.validate)."""

import pytest

from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import Dataflow, PortRef, PortSpec, Processor, WorkflowError
from repro.workflow.validate import check_valid, validate
from repro.values.types import STRING

from tests.conftest import build_diamond_workflow


def issue_codes(flow):
    return [(i.severity, i.code) for i in validate(flow)]


class TestCleanWorkflow:
    def test_diamond_has_no_issues(self):
        assert validate(build_diamond_workflow()) == []

    def test_check_valid_passes(self):
        check_valid(build_diamond_workflow())


class TestCycles:
    def _cyclic(self) -> Dataflow:
        flow = Dataflow("cyc")
        for name in ("A", "B"):
            flow.add_processor(
                Processor(name, [PortSpec("x", STRING)], [PortSpec("y", STRING)],
                          operation="identity")
            )
        flow.add_arc(PortRef("A", "y"), PortRef("B", "x"))
        flow.add_arc(PortRef("B", "y"), PortRef("A", "x"))
        return flow

    def test_cycle_is_an_error(self):
        assert ("error", "cycle") in issue_codes(self._cyclic())

    def test_check_valid_raises(self):
        with pytest.raises(WorkflowError, match="invalid"):
            check_valid(self._cyclic())

    def test_cycle_short_circuits_other_checks(self):
        codes = issue_codes(self._cyclic())
        assert codes == [("error", "cycle")]


class TestTypeChecks:
    def test_base_type_conflict_is_error(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "integer")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "P:x")
            .build()
        )
        assert ("error", "base-type-conflict") in issue_codes(flow)

    def test_depth_difference_alone_is_not_an_error(self):
        # Depth mismatches are what implicit iteration is *for*.
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(list(string))")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .output("out", "string")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        assert not any(i.is_error for i in validate(flow))


class TestWarnings:
    def test_unreachable_processor_warns(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "string")
            .processor("USED", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .processor("DEAD", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "USED:x")
            .arc("wf:a", "DEAD:x")
            .arc("USED:y", "wf:out")
            .build()
        )
        codes = issue_codes(flow)
        assert ("warning", "unreachable") in codes
        assert not any(sev == "error" for sev, _ in codes)

    def test_unbound_input_warns(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("P:y", "wf:out")
            .build()
        )
        assert ("warning", "unbound-input") in issue_codes(flow)

    def test_warnings_do_not_fail_check_valid(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("P:y", "wf:out")
            .build()
        )
        check_valid(flow)  # should not raise

    def test_issue_is_error_flag(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "integer")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "P:x")
            .build()
        )
        issues = validate(flow)
        assert any(i.is_error for i in issues)
        assert all(i.severity in ("error", "warning") for i in issues)
