"""Tests for workflow validation (repro.workflow.validate)."""

import pytest

from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import Dataflow, PortRef, PortSpec, Processor, WorkflowError
from repro.workflow.validate import check_valid, validate
from repro.values.types import INTEGER, STRING

from tests.conftest import build_diamond_workflow


def issue_codes(flow):
    return [(i.severity, i.code) for i in validate(flow)]


class TestCleanWorkflow:
    def test_diamond_has_no_issues(self):
        assert validate(build_diamond_workflow()) == []

    def test_check_valid_passes(self):
        check_valid(build_diamond_workflow())


class TestCycles:
    def _cyclic(self) -> Dataflow:
        flow = Dataflow("cyc")
        for name in ("A", "B"):
            flow.add_processor(
                Processor(name, [PortSpec("x", STRING)], [PortSpec("y", STRING)],
                          operation="identity")
            )
        flow.add_arc(PortRef("A", "y"), PortRef("B", "x"))
        flow.add_arc(PortRef("B", "y"), PortRef("A", "x"))
        return flow

    def test_cycle_is_an_error(self):
        assert ("error", "cycle") in issue_codes(self._cyclic())

    def test_check_valid_raises(self):
        with pytest.raises(WorkflowError, match="invalid"):
            check_valid(self._cyclic())

    def test_cycle_does_not_hide_other_findings(self):
        # The historical early-return reported nothing but the cycle; the
        # lint engine is total, so cycle-independent findings still come
        # out (here: neither processor can reach a workflow output).
        codes = issue_codes(self._cyclic())
        assert ("error", "cycle") in codes
        assert codes.count(("warning", "unreachable")) == 2

    def test_cycle_does_not_hide_type_conflicts(self):
        flow = Dataflow("cyc", inputs=[PortSpec("seed", INTEGER)])
        for name in ("A", "B", "C"):
            flow.add_processor(
                Processor(name, [PortSpec("x", STRING)],
                          [PortSpec("y", STRING)], operation="identity")
            )
        flow.add_arc(PortRef("A", "y"), PortRef("B", "x"))
        flow.add_arc(PortRef("B", "y"), PortRef("A", "x"))
        # Unrelated to the cycle: integer fed into a string port.
        flow.add_arc(PortRef("cyc", "seed"), PortRef("C", "x"))
        codes = issue_codes(flow)
        assert ("error", "cycle") in codes
        assert ("error", "base-type-conflict") in codes


class TestTypeChecks:
    def test_base_type_conflict_is_error(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "integer")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "P:x")
            .build()
        )
        assert ("error", "base-type-conflict") in issue_codes(flow)

    def test_depth_difference_alone_is_not_an_error(self):
        # Depth mismatches are what implicit iteration is *for*.
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(list(string))")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .output("out", "string")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        assert not any(i.is_error for i in validate(flow))


class TestWarnings:
    def test_unreachable_processor_warns(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "string")
            .processor("USED", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .processor("DEAD", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "USED:x")
            .arc("wf:a", "DEAD:x")
            .arc("USED:y", "wf:out")
            .build()
        )
        codes = issue_codes(flow)
        assert ("warning", "unreachable") in codes
        assert not any(sev == "error" for sev, _ in codes)

    def test_unbound_input_warns(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("P:y", "wf:out")
            .build()
        )
        assert ("warning", "unbound-input") in issue_codes(flow)

    def test_warnings_do_not_fail_check_valid(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("P:y", "wf:out")
            .build()
        )
        check_valid(flow)  # should not raise

    def test_negative_mismatch_warns_depth_mismatch(self):
        # GEN emits a flat string but P declares list(string): delta_s < 0,
        # repaired by singleton wrapping — reported so the designer can
        # confirm the declared type is intended.
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "list(string)")
            .processor("P", inputs=[("x", "list(string)")],
                       outputs=[("y", "list(string)")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        codes = issue_codes(flow)
        assert ("warning", "depth-mismatch") in codes
        assert not any(sev == "error" for sev, _ in codes)

    def test_positive_mismatch_is_not_reported(self):
        # Positive mismatches are what implicit iteration is for; only the
        # wrapping direction warrants a warning.
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .output("out", "list(string)")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        assert ("warning", "depth-mismatch") not in issue_codes(flow)

    def test_dot_mismatch_conflict_is_error(self):
        # dot (zip) requires its iterating ports to agree on the positive
        # mismatch; depth 1 zipped against depth 2 can never execute.
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .input("b", "list(list(string))")
            .output("out", "list(list(string))")
            .processor("P",
                       inputs=[("x", "string"), ("y", "string")],
                       outputs=[("z", "string")],
                       operation="concat_pair", iteration="dot")
            .arc("wf:a", "P:x")
            .arc("wf:b", "P:y")
            .arc("P:z", "wf:out")
            .build()
        )
        codes = issue_codes(flow)
        assert ("error", "dot-mismatch-conflict") in codes

    def test_unbound_input_message_names_the_port(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("P:y", "wf:out")
            .build()
        )
        issue = next(i for i in validate(flow) if i.code == "unbound-input")
        assert "P:x" in issue.message
        assert "default" in issue.message

    def test_dead_processor_message_names_the_processor(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "string")
            .processor("USED", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .processor("DEAD", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "USED:x")
            .arc("wf:a", "DEAD:x")
            .arc("USED:y", "wf:out")
            .build()
        )
        issue = next(i for i in validate(flow) if i.code == "unreachable")
        assert "DEAD" in issue.message

    def test_issue_is_error_flag(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "integer")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:a", "P:x")
            .build()
        )
        issues = validate(flow)
        assert any(i.is_error for i in issues)
        assert all(i.severity in ("error", "warning") for i in issues)
