"""Tests for workflow JSON (de)serialization (repro.workflow.serialize)."""

import json

import pytest

from repro.workflow import serialize
from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import PortRef, WorkflowError

from tests.conftest import build_diamond_workflow, build_fig3_workflow


def flows_equal(left, right) -> bool:
    """Structural equality via the canonical dict encoding."""
    return serialize.dataflow_to_dict(left) == serialize.dataflow_to_dict(right)


class TestRoundtrip:
    def test_diamond_roundtrip(self):
        flow = build_diamond_workflow()
        assert flows_equal(flow, serialize.loads(serialize.dumps(flow)))

    def test_fig3_roundtrip(self):
        flow = build_fig3_workflow()
        assert flows_equal(flow, serialize.loads(serialize.dumps(flow)))

    def test_roundtrip_preserves_port_order(self):
        flow = build_fig3_workflow()
        restored = serialize.loads(serialize.dumps(flow))
        assert [p.name for p in restored.processor("P").inputs] == ["X1", "X2", "X3"]

    def test_roundtrip_preserves_config_and_iteration(self):
        flow = (
            DataflowBuilder("wf")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="concat_pair", iteration="dot",
                       config={"joiner": "/"})
            .build()
        )
        restored = serialize.loads(serialize.dumps(flow))
        p = restored.processor("P")
        assert p.iteration == "dot"
        assert p.config == {"joiner": "/"}
        assert p.operation == "concat_pair"

    def test_roundtrip_preserves_types(self):
        flow = build_diamond_workflow()
        restored = serialize.loads(serialize.dumps(flow))
        assert restored.declared_depth(PortRef("wf", "out")) == 2

    def test_subflow_roundtrip(self):
        sub = (
            DataflowBuilder("sub")
            .input("a", "string")
            .output("b", "string")
            .processor("I", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("sub:a", "I:x")
            .arc("I:y", "sub:b")
            .build()
        )
        flow = (
            DataflowBuilder("wf")
            .input("v", "string")
            .output("w", "string")
            .processor("H", inputs=[("a", "string")], outputs=[("b", "string")],
                       subflow=sub)
            .arc("wf:v", "H:a")
            .arc("H:b", "wf:w")
            .build()
        )
        restored = serialize.loads(serialize.dumps(flow))
        assert restored.processor("H").is_subflow
        assert flows_equal(flow.flattened(), restored.flattened())


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        flow = build_diamond_workflow()
        path = str(tmp_path / "wf.json")
        serialize.save(flow, path)
        assert flows_equal(flow, serialize.load(path))

    def test_output_is_valid_json(self, tmp_path):
        path = str(tmp_path / "wf.json")
        serialize.save(build_diamond_workflow(), path)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["format"] == serialize.FORMAT_VERSION
        assert data["name"] == "wf"


class TestErrors:
    def test_unsupported_version_rejected(self):
        data = serialize.dataflow_to_dict(build_diamond_workflow())
        data["format"] = 99
        with pytest.raises(WorkflowError, match="version"):
            serialize.dataflow_from_dict(data)

    def test_malformed_arc_ref_rejected(self):
        data = serialize.dataflow_to_dict(build_diamond_workflow())
        data["arcs"][0]["source"] = "no-colon"
        with pytest.raises(WorkflowError, match="malformed"):
            serialize.dataflow_from_dict(data)
