"""Tests for graph traversal utilities (repro.workflow.visit)."""

import pytest

from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import Dataflow, PortRef, PortSpec, Processor, WorkflowError
from repro.workflow import visit
from repro.values.types import STRING

from tests.conftest import build_diamond_workflow


def cyclic_flow() -> Dataflow:
    flow = Dataflow("cyc")
    flow.add_processor(
        Processor("A", [PortSpec("x", STRING)], [PortSpec("y", STRING)],
                  operation="identity")
    )
    flow.add_processor(
        Processor("B", [PortSpec("x", STRING)], [PortSpec("y", STRING)],
                  operation="identity")
    )
    flow.add_arc(PortRef("A", "y"), PortRef("B", "x"))
    flow.add_arc(PortRef("B", "y"), PortRef("A", "x"))
    return flow


class TestToposort:
    def test_diamond_order(self):
        flow = build_diamond_workflow()
        names = [p.name for p in visit.topological_sort(flow)]
        assert names.index("GEN") < names.index("A")
        assert names.index("GEN") < names.index("B")
        assert names.index("A") < names.index("F")
        assert names.index("B") < names.index("F")

    def test_stable_tiebreak_by_insertion(self):
        flow = build_diamond_workflow()
        names = [p.name for p in visit.topological_sort(flow)]
        # A was added before B and neither depends on the other.
        assert names.index("A") < names.index("B")

    def test_cycle_detection(self):
        with pytest.raises(WorkflowError, match="cycle"):
            visit.topological_sort(cyclic_flow())

    def test_empty_flow(self):
        assert visit.topological_sort(Dataflow("empty")) == []

    def test_dependencies_ignore_workflow_ports(self):
        flow = build_diamond_workflow()
        deps = visit.processor_dependencies(flow)
        assert deps["GEN"] == set()  # fed from a workflow input only
        assert deps["F"] == {"A", "B"}


class TestUpstream:
    def test_output_port_leads_to_all_inputs(self):
        flow = build_diamond_workflow()
        ups = visit.upstream_ports(flow, PortRef("F", "y"))
        assert set(ups) == {PortRef("F", "a"), PortRef("F", "b")}

    def test_input_port_follows_arc(self):
        flow = build_diamond_workflow()
        assert visit.upstream_ports(flow, PortRef("A", "x")) == [
            PortRef("GEN", "list")
        ]

    def test_workflow_output_follows_arc(self):
        flow = build_diamond_workflow()
        assert visit.upstream_ports(flow, PortRef("wf", "out")) == [
            PortRef("F", "y")
        ]

    def test_unconnected_input_is_terminal(self):
        flow = (
            DataflowBuilder("wf")
            .processor("P", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .build()
        )
        assert visit.upstream_ports(flow, PortRef("P", "x")) == []

    def test_reachable_upstream_closure(self):
        flow = build_diamond_workflow()
        seen = visit.reachable_upstream(flow, PortRef("wf", "out"))
        assert PortRef("GEN", "size") in seen
        assert PortRef("wf", "size") in seen
        assert len(seen) == 11  # every port of the diamond


class TestPaths:
    def test_paths_between(self):
        flow = build_diamond_workflow()
        paths = visit.paths_between(flow, "GEN", "F")
        assert sorted(paths) == [["GEN", "A", "F"], ["GEN", "B", "F"]]

    def test_no_path(self):
        flow = build_diamond_workflow()
        assert visit.paths_between(flow, "F", "GEN") == []

    def test_graph_size(self):
        flow = build_diamond_workflow()
        assert visit.graph_size(flow) == (4, 6)

    def test_arc_count_into(self):
        flow = build_diamond_workflow()
        assert visit.arc_count_into(flow, "F") == 2
        assert visit.arc_count_into(flow, "GEN") == 1
