"""Tests for the dataflow model (repro.workflow.model)."""

import pytest

from repro.values.types import STRING, ValueType
from repro.workflow.model import (
    Arc,
    Dataflow,
    PortRef,
    PortSpec,
    Processor,
    WorkflowError,
)


def spec(name: str, type_text: str = "string") -> PortSpec:
    return PortSpec(name, ValueType.decode(type_text))


class TestPortSpec:
    def test_declared_depth(self):
        assert spec("x", "string").declared_depth == 0
        assert spec("x", "list(list(string))").declared_depth == 2

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowError):
            PortSpec("", STRING)


class TestPortRef:
    def test_str(self):
        assert str(PortRef("P", "X")) == "P:X"

    def test_ordering_and_hash(self):
        refs = {PortRef("A", "x"), PortRef("A", "x"), PortRef("B", "x")}
        assert len(refs) == 2
        assert PortRef("A", "x") < PortRef("B", "x")


class TestProcessor:
    def test_port_lookup(self):
        p = Processor("P", [spec("a"), spec("b")], [spec("y")], operation="identity")
        assert p.input_port("a").name == "a"
        assert p.output_port("y").name == "y"
        assert p.has_input("b")
        assert not p.has_input("y")
        assert p.has_output("y")

    def test_input_position_is_port_order(self):
        p = Processor("P", [spec("b"), spec("a")], [], operation="identity")
        assert p.input_position("b") == 0
        assert p.input_position("a") == 1

    def test_unknown_port_raises(self):
        p = Processor("P", [spec("a")], [], operation="identity")
        with pytest.raises(WorkflowError):
            p.input_port("zz")
        with pytest.raises(WorkflowError):
            p.input_position("zz")

    def test_duplicate_ports_rejected(self):
        with pytest.raises(WorkflowError):
            Processor("P", [spec("a"), spec("a")], [], operation="identity")

    def test_operation_and_subflow_mutually_exclusive(self):
        sub = Dataflow("sub")
        with pytest.raises(WorkflowError):
            Processor("P", [], [], operation="identity", subflow=sub)

    def test_unknown_iteration_rejected(self):
        with pytest.raises(WorkflowError):
            Processor("P", [], [], operation="identity", iteration="zipper")

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowError):
            Processor("", [], [], operation="identity")


class TestDataflowConstruction:
    def _flow(self) -> Dataflow:
        flow = Dataflow("wf", inputs=[spec("in")], outputs=[spec("out")])
        flow.add_processor(
            Processor("P", [spec("x")], [spec("y")], operation="identity")
        )
        return flow

    def test_add_processor_and_lookup(self):
        flow = self._flow()
        assert flow.processor("P").name == "P"
        assert flow.has_processor("P")
        assert not flow.has_processor("Q")
        assert flow.processor_names == ("P",)

    def test_duplicate_processor_rejected(self):
        flow = self._flow()
        with pytest.raises(WorkflowError):
            flow.add_processor(Processor("P", [], [], operation="identity"))

    def test_processor_named_like_workflow_rejected(self):
        flow = self._flow()
        with pytest.raises(WorkflowError):
            flow.add_processor(Processor("wf", [], [], operation="identity"))

    def test_unknown_processor_lookup_raises(self):
        with pytest.raises(WorkflowError):
            self._flow().processor("nope")

    def test_valid_arcs(self):
        flow = self._flow()
        flow.add_arc(PortRef("wf", "in"), PortRef("P", "x"))
        flow.add_arc(PortRef("P", "y"), PortRef("wf", "out"))
        assert len(flow.arcs) == 2

    def test_arc_from_input_port_rejected(self):
        flow = self._flow()
        with pytest.raises(WorkflowError):
            flow.add_arc(PortRef("P", "x"), PortRef("wf", "out"))

    def test_arc_into_output_port_rejected(self):
        flow = self._flow()
        with pytest.raises(WorkflowError):
            flow.add_arc(PortRef("wf", "in"), PortRef("P", "y"))

    def test_arc_to_unknown_port_rejected(self):
        flow = self._flow()
        with pytest.raises(WorkflowError):
            flow.add_arc(PortRef("wf", "in"), PortRef("P", "zz"))

    def test_single_assignment_per_sink(self):
        flow = self._flow()
        flow.add_arc(PortRef("wf", "in"), PortRef("P", "x"))
        with pytest.raises(WorkflowError):
            flow.add_arc(PortRef("wf", "in"), PortRef("P", "x"))

    def test_fanout_from_one_source_allowed(self):
        flow = Dataflow("wf", inputs=[spec("in")])
        flow.add_processor(Processor("A", [spec("x")], [spec("y")], operation="identity"))
        flow.add_processor(Processor("B", [spec("x")], [spec("y")], operation="identity"))
        flow.add_arc(PortRef("wf", "in"), PortRef("A", "x"))
        flow.add_arc(PortRef("wf", "in"), PortRef("B", "x"))
        assert len(flow.arcs) == 2


class TestDataflowQueries:
    def _wired(self) -> Dataflow:
        flow = Dataflow("wf", inputs=[spec("in")], outputs=[spec("out")])
        flow.add_processor(
            Processor("P", [spec("x")], [spec("y")], operation="identity")
        )
        flow.add_arc(PortRef("wf", "in"), PortRef("P", "x"))
        flow.add_arc(PortRef("P", "y"), PortRef("wf", "out"))
        return flow

    def test_incoming_arc(self):
        flow = self._wired()
        arc = flow.incoming_arc(PortRef("P", "x"))
        assert arc is not None and arc.source == PortRef("wf", "in")
        assert flow.incoming_arc(PortRef("P", "y")) is None

    def test_outgoing_arcs(self):
        flow = self._wired()
        assert len(flow.outgoing_arcs(PortRef("P", "y"))) == 1
        assert flow.outgoing_arcs(PortRef("P", "x")) == []

    def test_arcs_into_and_out_of_processor(self):
        flow = self._wired()
        assert len(flow.arcs_into_processor("P")) == 1
        assert len(flow.arcs_out_of_processor("P")) == 1

    def test_iter_port_refs_covers_everything(self):
        refs = set(self._wired().iter_port_refs())
        assert refs == {
            PortRef("wf", "in"),
            PortRef("wf", "out"),
            PortRef("P", "x"),
            PortRef("P", "y"),
        }

    def test_declared_depth_lookup(self):
        flow = Dataflow("wf", inputs=[spec("in", "list(string)")])
        flow.add_processor(
            Processor("P", [spec("x")], [spec("y", "list(string)")],
                      operation="identity")
        )
        assert flow.declared_depth(PortRef("wf", "in")) == 1
        assert flow.declared_depth(PortRef("P", "x")) == 0
        assert flow.declared_depth(PortRef("P", "y")) == 1
        with pytest.raises(WorkflowError):
            flow.declared_depth(PortRef("P", "zz"))

    def test_workflow_port_refs(self):
        flow = self._wired()
        assert flow.workflow_input_ref("in") == PortRef("wf", "in")
        assert flow.workflow_output_ref("out") == PortRef("wf", "out")
        with pytest.raises(WorkflowError):
            flow.workflow_input_ref("missing")
