"""Tests for workflow construction patterns (repro.workflow.patterns)."""

import pytest

from repro.engine.executor import run_workflow
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.workflow.builder import DataflowBuilder
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef, WorkflowError
from repro.workflow.patterns import fan_out, join_cross, pipeline, scatter_gather


class TestPipeline:
    def test_builds_linear_chain(self):
        builder = DataflowBuilder("wf").input("items", "list(string)")
        end = pipeline(
            builder,
            "wf:items",
            [
                ("clean", "tag", {"suffix": "-c"}),
                ("norm", "tag", {"suffix": "-n"}),
            ],
        )
        builder.output("out", "list(string)").arc(end, "wf:out")
        flow = builder.build()
        result = run_workflow(flow, {"items": ["a", "b"]})
        assert result.outputs["out"] == ["a-c-n", "b-c-n"]

    def test_empty_stage_list_returns_source(self):
        builder = DataflowBuilder("wf").input("a", "string")
        assert pipeline(builder, "wf:a", []) == "wf:a"


class TestScatterGather:
    def test_granularity_boundary(self):
        builder = DataflowBuilder("wf").input("items", "list(string)")
        end = scatter_gather(
            builder,
            "wf:items",
            worker=("work", "tag", {"suffix": "-w"}),
            gather=("merge", "flatten_join", None),
        )
        builder.output("out", "string").arc(end, "wf:out")
        from repro.engine.processors import default_registry

        registry = default_registry().extended()
        registry.register(
            "flatten_join", lambda inputs, config: {"y": "|".join(inputs["x"])}
        )
        flow = builder.build()
        analysis = propagate_depths(flow)
        assert analysis.mismatch(PortRef("work", "x")) == 1   # scatter
        assert analysis.mismatch(PortRef("merge", "x")) == 0  # gather
        result = run_workflow(flow, {"items": ["a", "b"]}, registry=registry)
        assert result.outputs["out"] == "a-w|b-w"

    def test_gather_output_lineage_is_coarse(self):
        builder = DataflowBuilder("wf").input("items", "list(string)")
        end = scatter_gather(
            builder,
            "wf:items",
            worker=("work", "identity", None),
            gather=("merge", "count", None),
        )
        builder.output("n", "string").arc(end, "wf:n")
        flow = builder.build()
        captured = capture_run(flow, {"items": ["a", "b", "c"]})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            result = IndexProjEngine(store, flow).lineage(
                captured.run_id,
                LineageQuery.create("wf", "n", (), ["work"]),
            )
            # The gather consumed everything: all worker elements appear.
            assert len(result.bindings) == 3


class TestFanOutAndJoin:
    def test_diamond_via_patterns(self):
        builder = (
            DataflowBuilder("wf")
            .input("size", "integer")
            .output("out", "list(list(string))")
            .processor("GEN", inputs=[("size", "integer")],
                       outputs=[("list", "list(string)")],
                       operation="list_generator", config={"out": "list"})
            .arc("wf:size", "GEN:size")
        )
        branch_ports = fan_out(
            builder,
            "GEN:list",
            [("A", "tag", {"suffix": "-a"}), ("B", "tag", {"suffix": "-b"})],
        )
        end = join_cross(builder, "JOIN", branch_ports)
        builder.arc(end, "wf:out")
        flow = builder.build()
        result = run_workflow(flow, {"size": 2})
        assert result.outputs["out"][1][0] == "item-1-a+item-0-b"

    def test_join_lineage_projection(self):
        builder = DataflowBuilder("wf")
        builder.input("xs", "list(string)").input("ys", "list(string)")
        builder.output("out", "list(list(string))")
        end = join_cross(builder, "JOIN", ["wf:xs", "wf:ys"])
        builder.arc(end, "wf:out")
        flow = builder.build()
        captured = capture_run(flow, {"xs": ["x0", "x1"], "ys": ["y0"]})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            result = IndexProjEngine(store, flow).lineage(
                captured.run_id,
                LineageQuery.create("wf", "out", [1, 0], ["JOIN"]),
            )
            assert sorted(b.key() for b in result.bindings) == [
                ("JOIN", "b1", "1"), ("JOIN", "b2", "0"),
            ]

    def test_validation(self):
        builder = DataflowBuilder("wf").input("a", "string")
        with pytest.raises(WorkflowError):
            fan_out(builder, "wf:a", [])
        with pytest.raises(WorkflowError):
            join_cross(builder, "J", ["wf:a"])
