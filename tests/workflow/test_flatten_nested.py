"""Tests for nested-workflow flattening (Dataflow.flattened)."""

from repro.engine.executor import run_workflow
from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import PortRef


def make_subflow():
    return (
        DataflowBuilder("sub")
        .input("a", "string")
        .output("b", "string")
        .processor("inner", inputs=[("x", "string")], outputs=[("y", "string")],
                   operation="tag", config={"suffix": "-inner"})
        .arc("sub:a", "inner:x")
        .arc("inner:y", "sub:b")
        .build()
    )


def make_host():
    return (
        DataflowBuilder("wf")
        .input("v", "string")
        .output("w", "string")
        .processor("pre", inputs=[("x", "string")], outputs=[("y", "string")],
                   operation="tag", config={"suffix": "-pre"})
        .processor("H", inputs=[("a", "string")], outputs=[("b", "string")],
                   subflow=make_subflow())
        .processor("post", inputs=[("x", "string")], outputs=[("y", "string")],
                   operation="tag", config={"suffix": "-post"})
        .arcs(
            ("wf:v", "pre:x"),
            ("pre:y", "H:a"),
            ("H:b", "post:x"),
            ("post:y", "wf:w"),
        )
        .build()
    )


class TestFlattening:
    def test_flat_flow_returns_self(self):
        sub = make_subflow()
        assert sub.flattened() is sub

    def test_inlined_processor_names_are_qualified(self):
        flat = make_host().flattened()
        assert set(flat.processor_names) == {"pre", "H/inner", "post"}

    def test_boundary_arcs_rerouted(self):
        flat = make_host().flattened()
        arc_in = flat.incoming_arc(PortRef("H/inner", "x"))
        assert arc_in.source == PortRef("pre", "y")
        arc_out = flat.incoming_arc(PortRef("post", "x"))
        assert arc_out.source == PortRef("H/inner", "y")

    def test_flattened_executes_like_inline_equivalent(self):
        result = run_workflow(make_host(), {"v": "x"})
        assert result.outputs["w"] == "x-pre-inner-post"

    def test_two_levels_of_nesting(self):
        middle = (
            DataflowBuilder("mid")
            .input("a", "string")
            .output("b", "string")
            .processor("M", inputs=[("a", "string")], outputs=[("b", "string")],
                       subflow=make_subflow())
            .arc("mid:a", "M:a")
            .arc("M:b", "mid:b")
            .build()
        )
        host = (
            DataflowBuilder("wf")
            .input("v", "string")
            .output("w", "string")
            .processor("H", inputs=[("a", "string")], outputs=[("b", "string")],
                       subflow=middle)
            .arc("wf:v", "H:a")
            .arc("H:b", "wf:w")
            .build()
        )
        flat = host.flattened()
        assert set(flat.processor_names) == {"H/M/inner"}
        result = run_workflow(host, {"v": "q"})
        assert result.outputs["w"] == "q-inner"

    def test_subflow_passthrough_port(self):
        # A subflow that wires an input straight to an output.
        sub = (
            DataflowBuilder("sub")
            .input("a", "string")
            .output("b", "string")
            .arc("sub:a", "sub:b")
            .build()
        )
        host = (
            DataflowBuilder("wf")
            .input("v", "string")
            .output("w", "string")
            .processor("H", inputs=[("a", "string")], outputs=[("b", "string")],
                       subflow=sub)
            .processor("post", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("wf:v", "H:a")
            .arc("H:b", "post:x")
            .arc("post:y", "wf:w")
            .build()
        )
        result = run_workflow(host, {"v": "pass"})
        assert result.outputs["w"] == "pass"

    def test_iteration_through_subflow_boundary(self):
        # A depth-1 value against the subflow's depth-0 input: after
        # flattening, the inner processor iterates per element.
        host = (
            DataflowBuilder("wf")
            .input("v", "list(string)")
            .output("w", "list(string)")
            .processor("H", inputs=[("a", "string")], outputs=[("b", "string")],
                       subflow=make_subflow())
            .arc("wf:v", "H:a")
            .arc("H:b", "wf:w")
            .build()
        )
        result = run_workflow(host, {"v": ["p", "q"]})
        assert result.outputs["w"] == ["p-inner", "q-inner"]

    def test_dead_subflow_input_arc_dropped(self):
        sub = (
            DataflowBuilder("sub")
            .input("a", "string")
            .input("unused", "string")
            .output("b", "string")
            .processor("inner", inputs=[("x", "string")], outputs=[("y", "string")],
                       operation="identity")
            .arc("sub:a", "inner:x")
            .arc("inner:y", "sub:b")
            .build()
        )
        host = (
            DataflowBuilder("wf")
            .input("v", "string")
            .input("u", "string")
            .output("w", "string")
            .processor("H", inputs=[("a", "string"), ("unused", "string")],
                       outputs=[("b", "string")], subflow=sub)
            .arc("wf:v", "H:a")
            .arc("wf:u", "H:unused")
            .arc("H:b", "wf:w")
            .build()
        )
        flat = host.flattened()
        # The arc into the dead subflow input disappears; execution works.
        assert run_workflow(host, {"v": "x", "u": "y"}).outputs["w"] == "x"
        assert all(arc.sink.node != "H" for arc in flat.arcs)
