"""Tests for Alg. 1 depth propagation (repro.workflow.depths)."""

import pytest

from repro.workflow.builder import DataflowBuilder
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef, WorkflowError

from tests.conftest import build_diamond_workflow, build_fig3_workflow


class TestDiamond:
    def test_propagated_depths(self):
        flow = build_diamond_workflow()
        analysis = propagate_depths(flow)
        # GEN:size gets an atomic input, emits a depth-1 list.
        assert analysis.depth_of(PortRef("GEN", "size")) == 0
        assert analysis.depth_of(PortRef("GEN", "list")) == 1
        # A iterates per element: input depth 1 against dd 0.
        assert analysis.depth_of(PortRef("A", "x")) == 1
        assert analysis.mismatch(PortRef("A", "x")) == 1
        assert analysis.depth_of(PortRef("A", "y")) == 1
        # F cross-products two depth-1 lists: output depth 2.
        assert analysis.depth_of(PortRef("F", "y")) == 2
        assert analysis.depth_of(PortRef("wf", "out")) == 2

    def test_iteration_levels(self):
        analysis = propagate_depths(build_diamond_workflow())
        assert analysis.iteration_level("GEN") == 0
        assert analysis.iteration_level("A") == 1
        assert analysis.iteration_level("F") == 2

    def test_fragment_layout_offsets(self):
        analysis = propagate_depths(build_diamond_workflow())
        layout = analysis.fragment_layout("F")
        assert [(f.port, f.offset, f.length) for f in layout] == [
            ("a", 0, 1),
            ("b", 1, 1),
        ]


class TestFig3:
    """The paper's Fig. 3: mismatches (1, 0, 1) on P's three inputs."""

    def test_mismatches(self):
        analysis = propagate_depths(build_fig3_workflow())
        assert analysis.mismatch(PortRef("P", "X1")) == 1
        assert analysis.mismatch(PortRef("P", "X2")) == 0
        assert analysis.mismatch(PortRef("P", "X3")) == 1

    def test_output_depth_and_level(self):
        analysis = propagate_depths(build_fig3_workflow())
        assert analysis.iteration_level("P") == 2
        assert analysis.depth_of(PortRef("P", "Y")) == 2

    def test_fragment_layout_matches_worked_example(self):
        # q = [h, l]: X1 takes position 0, X2 nothing, X3 position 1.
        analysis = propagate_depths(build_fig3_workflow())
        layout = analysis.fragment_layout("P")
        assert [(f.port, f.offset, f.length) for f in layout] == [
            ("X1", 0, 1),
            ("X2", 1, 0),
            ("X3", 1, 1),
        ]


class TestEdgeCases:
    def test_unconnected_input_uses_declared_depth(self):
        flow = (
            DataflowBuilder("wf")
            .processor(
                "P",
                inputs=[("x", "list(string)")],
                outputs=[("y", "string")],
                operation="identity",
            )
            .build()
        )
        analysis = propagate_depths(flow)
        assert analysis.depth_of(PortRef("P", "x")) == 1
        assert analysis.mismatch(PortRef("P", "x")) == 0
        assert analysis.iteration_level("P") == 0

    def test_negative_mismatch_contributes_no_level(self):
        # An atomic workflow input feeding a list-typed port: delta = -1.
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .processor(
                "P",
                inputs=[("x", "list(string)")],
                outputs=[("y", "string")],
                operation="count",
            )
            .arc("wf:a", "P:x")
            .build()
        )
        analysis = propagate_depths(flow)
        assert analysis.mismatch(PortRef("P", "x")) == -1
        assert analysis.iteration_level("P") == 0
        assert analysis.depth_of(PortRef("P", "y")) == 0

    def test_depth_accumulates_through_chain(self):
        # Two consecutive 1-mismatch processors: each wraps one level.
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "list(string)")], operation="split_words")
            .processor("Q", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "Q:x")
            .build()
        )
        analysis = propagate_depths(flow)
        # P: input depth 1 vs dd 0 -> level 1; output dd 1 + 1 = depth 2.
        assert analysis.depth_of(PortRef("P", "y")) == 2
        # Q: input depth 2 vs dd 0 -> level 2; output depth 2.
        assert analysis.iteration_level("Q") == 2
        assert analysis.depth_of(PortRef("Q", "y")) == 2

    def test_unconnected_workflow_output_keeps_declared_depth(self):
        flow = DataflowBuilder("wf").output("out", "list(string)").build()
        analysis = propagate_depths(flow)
        assert analysis.depth_of(PortRef("wf", "out")) == 1

    def test_subflow_requires_flattening(self):
        sub = DataflowBuilder("sub").input("a").output("b").arc("sub:a", "sub:b")
        flow = (
            DataflowBuilder("wf")
            .processor("H", subflow=sub.build())
            .build()
        )
        with pytest.raises(WorkflowError, match="flattened"):
            propagate_depths(flow)

    def test_unknown_lookups_raise(self):
        analysis = propagate_depths(build_diamond_workflow())
        with pytest.raises(WorkflowError):
            analysis.depth_of(PortRef("ZZ", "y"))
        with pytest.raises(WorkflowError):
            analysis.mismatch(PortRef("A", "nope"))
        with pytest.raises(WorkflowError):
            analysis.iteration_level("ZZ")
        with pytest.raises(WorkflowError):
            analysis.fragment_layout("ZZ")

    def test_as_table_lists_every_port(self):
        flow = build_diamond_workflow()
        rows = propagate_depths(flow).as_table()
        assert len(rows) == 11
        assert ("F:y", 0, 2) in rows


class TestDotLayout:
    def _dot_flow(self, in_types=("string", "string")):
        return (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .input("b", "list(string)")
            .processor(
                "Z",
                inputs=[("x1", in_types[0]), ("x2", in_types[1])],
                outputs=[("y", "string")],
                operation="concat_pair",
                iteration="dot",
                config={"left": "x1", "right": "x2"},
            )
            .arcs(("wf:a", "Z:x1"), ("wf:b", "Z:x2"))
            .build()
        )

    def test_dot_level_is_max_not_sum(self):
        analysis = propagate_depths(self._dot_flow())
        assert analysis.iteration_level("Z") == 1

    def test_dot_ports_share_fragment(self):
        analysis = propagate_depths(self._dot_flow())
        layout = analysis.fragment_layout("Z")
        assert [(f.port, f.offset, f.length) for f in layout] == [
            ("x1", 0, 1),
            ("x2", 0, 1),
        ]

    def test_dot_with_unequal_mismatches_rejected(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(list(string))")
            .input("b", "list(string)")
            .processor(
                "Z",
                inputs=[("x1", "string"), ("x2", "string")],
                outputs=[("y", "string")],
                operation="concat_pair",
                iteration="dot",
            )
            .arcs(("wf:a", "Z:x1"), ("wf:b", "Z:x2"))
            .build()
        )
        with pytest.raises(WorkflowError, match="dot iteration"):
            propagate_depths(flow)

    def test_dot_with_non_iterated_port(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "list(string)")
            .input("b", "string")
            .processor(
                "Z",
                inputs=[("x1", "string"), ("x2", "string")],
                outputs=[("y", "string")],
                operation="concat_pair",
                iteration="dot",
                config={"left": "x1", "right": "x2"},
            )
            .arcs(("wf:a", "Z:x1"), ("wf:b", "Z:x2"))
            .build()
        )
        analysis = propagate_depths(flow)
        assert analysis.iteration_level("Z") == 1
        layout = analysis.fragment_layout("Z")
        assert [(f.port, f.length) for f in layout] == [("x1", 1), ("x2", 0)]
