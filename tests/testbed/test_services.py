"""Tests for the synthetic service catalog (repro.testbed.services)."""

from repro.engine.processors import ProcessorRegistry
from repro.testbed.services import (
    COMMON_PATHWAY,
    op_extract_protein_terms,
    op_kegg_pathway_descriptions,
    op_kegg_pathways_by_genes,
    op_pubmed_fetch_abstract,
    pathway_description,
    pathways_for_gene,
    register_services,
    synthetic_abstract,
)


class TestKeggCatalog:
    def test_deterministic(self):
        assert pathways_for_gene("mmu:20816") == pathways_for_gene("mmu:20816")

    def test_every_gene_has_common_pathway(self):
        for gene in ("a", "b", "mmu:328788", "42"):
            assert COMMON_PATHWAY in pathways_for_gene(gene)

    def test_genes_have_specific_pathways(self):
        pathways = pathways_for_gene("mmu:20816")
        assert len(pathways) == 3
        assert len(set(pathways)) == 3

    def test_different_genes_usually_differ(self):
        assert pathways_for_gene("gene-a") != pathways_for_gene("gene-b")

    def test_description_is_stable_and_prefixed(self):
        desc = pathway_description("path:04123")
        assert desc.startswith("path:04123 ")
        assert desc == pathway_description("path:04123")

    def test_common_pathway_description(self):
        assert pathway_description(COMMON_PATHWAY) == f"{COMMON_PATHWAY} MAPK signaling"


class TestKeggOperations:
    def test_union_mode(self):
        out = op_kegg_pathways_by_genes(
            {"genes_id_list": ["g1", "g2"]}, {"mode": "union"}
        )
        result = out["return"]
        assert COMMON_PATHWAY in result
        for gene in ("g1", "g2"):
            for pathway in pathways_for_gene(gene):
                assert pathway in result
        assert len(result) == len(set(result))  # deduplicated

    def test_common_mode(self):
        out = op_kegg_pathways_by_genes(
            {"genes_id_list": ["g1", "g2", "g3"]}, {"mode": "common"}
        )
        assert COMMON_PATHWAY in out["return"]
        for pathway in out["return"]:
            for gene in ("g1", "g2", "g3"):
                assert pathway in pathways_for_gene(gene)

    def test_empty_gene_list(self):
        assert op_kegg_pathways_by_genes({"genes_id_list": []}, {}) == {"return": []}

    def test_descriptions(self):
        out = op_kegg_pathway_descriptions(
            {"string": [COMMON_PATHWAY, "path:04200"]}, {}
        )
        assert out["return"] == [
            pathway_description(COMMON_PATHWAY),
            pathway_description("path:04200"),
        ]


class TestPubmedOperations:
    def test_abstract_deterministic_and_mentions_proteins(self):
        text = synthetic_abstract("pmid:1000")
        assert text == synthetic_abstract("pmid:1000")
        assert "pmid:1000" in text

    def test_fetch_abstract_op(self):
        out = op_pubmed_fetch_abstract({"id": "pmid:7"}, {})
        assert out["abstract"] == synthetic_abstract("pmid:7")

    def test_extract_terms_finds_lexicon_entries(self):
        out = op_extract_protein_terms(
            {"text": "BRCA1 interacts with TP53, not FOO."}, {}
        )
        assert out["terms"] == ["BRCA1", "TP53"]

    def test_extract_terms_deduplicates(self):
        out = op_extract_protein_terms({"text": "KRAS and KRAS again"}, {})
        assert out["terms"] == ["KRAS"]

    def test_extraction_closes_loop_with_abstracts(self):
        text = synthetic_abstract("pmid:1234")
        out = op_extract_protein_terms({"text": text}, {})
        assert out["terms"]  # every synthetic abstract mentions proteins


class TestRegistration:
    def test_register_services(self):
        registry = ProcessorRegistry()
        register_services(registry)
        for name in (
            "kegg_pathways_by_genes",
            "kegg_pathway_descriptions",
            "pubmed_fetch_abstract",
            "extract_protein_terms",
        ):
            assert name in registry
