"""Tests for the provenance-challenge workload (file loading)."""

import pytest

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.workloads import PC_DEFAULT_INPUT, file_loading_workload
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef
from repro.workflow.validate import validate


@pytest.fixture(scope="module")
def captured():
    workload = file_loading_workload()
    run = capture_run(workload.flow, workload.inputs, runner=workload.runner())
    store = TraceStore()
    store.insert_trace(run.trace)
    yield workload, run, store
    store.close()


class TestStructure:
    def test_validates_clean(self):
        workload = file_loading_workload()
        assert not any(i.is_error for i in validate(workload.flow))

    def test_granularity_profile(self):
        """Fine per-file, coarse through the DB load, fine per-row after."""
        analysis = propagate_depths(file_loading_workload().flow)
        assert analysis.mismatch(PortRef("read_file", "name")) == 1
        assert analysis.mismatch(PortRef("check_record", "record")) == 1
        assert analysis.mismatch(PortRef("load_db", "records")) == 0
        assert analysis.mismatch(PortRef("load_db", "statuses")) == 0
        assert analysis.mismatch(PortRef("process", "row")) == 1


class TestExecution:
    def test_corrupt_file_rejected(self, captured):
        _, run, _ = captured
        report = run.outputs["validation_report"]
        assert report == ["ok", "ok", "reject:malformed", "ok"]

    def test_database_excludes_rejected_rows(self, captured):
        _, run, _ = captured
        assert len(run.outputs["report"]) == 3  # 4 files - 1 rejected
        assert all("corrupt" not in row for row in run.outputs["report"])


class TestPaperQuestions:
    def test_what_results_did_the_checks_produce(self, captured):
        """Per-file validation lineage is fine-grained: status i depends
        only on file i."""
        workload, run, store = captured
        engine = IndexProjEngine(store, workload.flow)
        for i, file_name in enumerate(PC_DEFAULT_INPUT):
            result = engine.lineage(
                run.run_id,
                LineageQuery.create(
                    "file_loading", "validation_report", (i,), ["read_file"]
                ),
            )
            assert [b.key() for b in result.bindings] == [
                ("read_file", "name", str(i))
            ]
            assert result.bindings[0].value == file_name

    def test_which_input_files_were_used_for_the_loading(self, captured):
        """Through the coarse DB load, every processed row depends on ALL
        input files — the correct (and only honest) answer for a black-box
        bulk loader."""
        workload, run, store = captured
        for engine in (
            NaiveEngine(store),
            IndexProjEngine(store, workload.flow),
        ):
            result = engine.lineage(
                run.run_id,
                LineageQuery.create(
                    "file_loading", "report", (0,), ["read_file"]
                ),
            )
            assert sorted(b.key() for b in result.bindings) == [
                ("read_file", "name", str(i))
                for i in range(len(PC_DEFAULT_INPUT))
            ]

    def test_strategies_agree_on_all_outputs(self, captured):
        workload, run, store = captured
        flat = workload.flow.flattened()
        naive = NaiveEngine(store)
        indexproj = IndexProjEngine(store, workload.flow)
        for port, index in (
            ("report", (1,)), ("report", ()), ("validation_report", (2,)),
        ):
            query = LineageQuery.create(
                "file_loading", port, index, list(flat.processor_names)
            )
            left = naive.lineage(run.run_id, query)
            right = indexproj.lineage(run.run_id, query)
            assert left.binding_keys() == right.binding_keys(), (port, index)

    def test_workload_bundle(self):
        workload = file_loading_workload()
        assert workload.focused_query().focus == frozenset({"read_file"})
        assert len(workload.unfocused_query().focus) == 4
