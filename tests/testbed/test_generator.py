"""Tests for the synthetic testbed generator (repro.testbed.generator)."""

import pytest

from repro.engine.executor import run_workflow
from repro.testbed.generator import (
    FINAL_PROCESSOR,
    LISTGEN_PROCESSOR,
    chain_processor_names,
    chain_product_workflow,
    focused_query,
    partially_focused_query,
    unfocused_query,
)
from repro.values.index import Index
from repro.workflow.model import PortRef, WorkflowError
from repro.workflow.validate import validate
from repro.workflow.visit import paths_between


class TestTopology:
    def test_processor_count(self):
        flow = chain_product_workflow(7)
        assert len(flow.processors) == 2 * 7 + 2

    def test_arc_count(self):
        flow = chain_product_workflow(7)
        # size arc + 2 chain-head arcs + 2*(l-1) intra-chain + 2 into final
        # + 1 output arc = 2l + 4
        assert len(flow.arcs) == 2 * 7 + 4

    def test_two_disjoint_chains(self):
        flow = chain_product_workflow(4)
        paths = paths_between(flow, LISTGEN_PROCESSOR, FINAL_PROCESSOR)
        assert len(paths) == 2
        assert all(len(path) == 4 + 2 for path in paths)

    def test_chain_names(self):
        assert chain_processor_names(3, 1) == ["CHAIN1_0", "CHAIN1_1", "CHAIN1_2"]
        assert chain_processor_names(2, 2) == ["CHAIN2_0", "CHAIN2_1"]
        with pytest.raises(ValueError):
            chain_processor_names(2, 3)

    def test_length_one(self):
        flow = chain_product_workflow(1)
        assert len(flow.processors) == 4

    def test_invalid_length_rejected(self):
        with pytest.raises(WorkflowError):
            chain_product_workflow(0)

    def test_custom_name(self):
        assert chain_product_workflow(2, name="bench").name == "bench"

    def test_validates_clean(self):
        assert validate(chain_product_workflow(5)) == []


class TestExecution:
    def test_output_is_d_by_d(self):
        flow = chain_product_workflow(3)
        result = run_workflow(flow, {"ListSize": 4})
        out = result.outputs["out"]
        assert len(out) == 4
        assert all(len(row) == 4 for row in out)

    def test_elements_record_their_sources(self):
        flow = chain_product_workflow(2)
        result = run_workflow(flow, {"ListSize": 2})
        assert result.outputs["out"][0][1] == "e-0+e-1"

    def test_list_propagates_identically_down_chains(self):
        flow = chain_product_workflow(3)
        result = run_workflow(flow, {"ListSize": 3})
        gen = result.port_values[PortRef(LISTGEN_PROCESSOR, "list")]
        last1 = result.port_values[PortRef("CHAIN1_2", "y")]
        last2 = result.port_values[PortRef("CHAIN2_2", "y")]
        assert gen == last1 == last2

    def test_trace_record_count_grows_with_l_and_d(self):
        from repro.provenance.capture import capture_run

        small = capture_run(chain_product_workflow(2), {"ListSize": 2}).trace
        longer = capture_run(chain_product_workflow(4), {"ListSize": 2}).trace
        wider = capture_run(chain_product_workflow(2), {"ListSize": 4}).trace
        assert longer.record_count > small.record_count
        assert wider.record_count > small.record_count
        # The d^2 cross product dominates the d direction.
        assert wider.record_count - small.record_count > 2 * (
            longer.record_count - small.record_count
        ) / 2


class TestCanonicalQueries:
    def test_focused_query_shape(self):
        query = focused_query(Index(1, 2))
        assert query.node == FINAL_PROCESSOR
        assert query.index == Index(1, 2)
        assert query.focus == frozenset({LISTGEN_PROCESSOR})

    def test_unfocused_query_covers_all_processors(self):
        flow = chain_product_workflow(3)
        query = unfocused_query(flow)
        assert query.focus == frozenset(flow.processor_names)

    def test_partial_focus_size(self):
        flow = chain_product_workflow(10)  # 22 processors
        query = partially_focused_query(flow, 0.5)
        assert len(query.focus) == 11
        assert LISTGEN_PROCESSOR in query.focus

    def test_partial_focus_minimum_one(self):
        flow = chain_product_workflow(10)
        query = partially_focused_query(flow, 0.0)
        assert query.focus == frozenset({LISTGEN_PROCESSOR})

    def test_partial_focus_fraction_bounds(self):
        flow = chain_product_workflow(3)
        with pytest.raises(ValueError):
            partially_focused_query(flow, 1.5)
