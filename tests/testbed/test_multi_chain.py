"""Tests for the n-ary testbed generalization (multi_chain_workflow)."""

import pytest

from repro.engine.executor import run_workflow
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import multi_chain_workflow
from repro.values.index import Index
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef, WorkflowError


class TestTopology:
    def test_processor_count(self):
        flow = multi_chain_workflow(4, branches=3)
        assert len(flow.processors) == 3 * 4 + 2

    def test_parameter_validation(self):
        with pytest.raises(WorkflowError):
            multi_chain_workflow(0, 3)
        with pytest.raises(WorkflowError):
            multi_chain_workflow(3, 1)

    def test_output_depth_equals_branch_count(self):
        for branches in (2, 3, 4):
            flow = multi_chain_workflow(2, branches)
            analysis = propagate_depths(flow)
            assert analysis.iteration_level("2TO1_FINAL") == branches
            assert analysis.depth_of(PortRef(flow.name, "out")) == branches


class TestExecution:
    def test_nary_cross_product_shape(self):
        flow = multi_chain_workflow(2, branches=3)
        result = run_workflow(flow, {"ListSize": 2})
        out = result.outputs["out"]
        assert len(out) == 2
        assert len(out[0]) == 2
        assert len(out[0][0]) == 2
        assert out[1][0][1] == "e-1+e-0+e-1"

    def test_instance_count(self):
        flow = multi_chain_workflow(1, branches=3)
        captured = capture_run(flow, {"ListSize": 3})
        assert len(captured.trace.instances_of("2TO1_FINAL")) == 27


class TestLineage:
    def test_fine_grained_nary_projection(self):
        """q = [i, j, k] splits into one position per branch."""
        flow = multi_chain_workflow(3, branches=3)
        captured = capture_run(flow, {"ListSize": 3})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            query = LineageQuery.create(
                "2TO1_FINAL", "y", [2, 0, 1],
                ["CHAIN1_0", "CHAIN2_0", "CHAIN3_0"],
            )
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, flow).lineage(
                captured.run_id, query
            )
            assert naive.binding_keys() == indexproj.binding_keys()
            assert sorted(b.key() for b in indexproj.bindings) == [
                ("CHAIN1_0", "x", "2"),
                ("CHAIN2_0", "x", "0"),
                ("CHAIN3_0", "x", "1"),
            ]

    def test_breadth_affects_traversal_not_lookups(self):
        """The paper's claim: breadth matters for the graph-search phase,
        not for the per-focus trace access."""
        from repro.query.indexproj import build_plan

        narrow = multi_chain_workflow(5, branches=2)
        wide = multi_chain_workflow(5, branches=5)
        query = LineageQuery.create(
            "2TO1_FINAL", "y", Index(0, 0), ["LISTGEN_1"]
        )
        wide_query = LineageQuery.create(
            "2TO1_FINAL", "y", Index(0, 0, 0, 0, 0), ["LISTGEN_1"]
        )
        narrow_plan = build_plan(propagate_depths(narrow), query)
        wide_plan = build_plan(propagate_depths(wide), wide_query)
        assert wide_plan.visited_ports > narrow_plan.visited_ports
        assert len(narrow_plan) == len(wide_plan) == 1
