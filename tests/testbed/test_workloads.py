"""Tests for the GK and PD workloads (repro.testbed.workloads)."""

from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.testbed.runs import populate_store
from repro.testbed.services import COMMON_PATHWAY, pathway_description
from repro.testbed.workloads import (
    GK_DEFAULT_INPUT,
    genes2kegg_workload,
    protein_discovery_workload,
)
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef
from repro.workflow.validate import validate


class TestGenes2Kegg:
    def setup_method(self):
        self.workload = genes2kegg_workload()
        self.captured = capture_run(
            self.workload.flow, self.workload.inputs, runner=self.workload.runner()
        )

    def test_validates_clean(self):
        assert not any(i.is_error for i in validate(self.workload.flow))

    def test_left_branch_is_fine_grained(self):
        analysis = propagate_depths(self.workload.flow)
        assert analysis.mismatch(
            PortRef("get_pathways_by_genes", "genes_id_list")
        ) == 1
        assert analysis.mismatch(PortRef("getPathwayDescriptions", "string")) == 1

    def test_right_branch_is_coarse(self):
        analysis = propagate_depths(self.workload.flow)
        assert analysis.mismatch(PortRef("flatten_gene_lists", "x")) == 0
        assert analysis.iteration_level("get_pathways_common") == 0

    def test_paths_per_gene_structure(self):
        paths = self.captured.outputs["paths_per_gene"]
        assert len(paths) == len(GK_DEFAULT_INPUT)  # one sublist per gene list
        assert all(isinstance(entry, list) for entry in paths)

    def test_common_pathway_present_in_both_outputs(self):
        common_desc = pathway_description(COMMON_PATHWAY)
        assert common_desc in self.captured.outputs["commonPathways"]
        for sublist in self.captured.outputs["paths_per_gene"]:
            assert common_desc in sublist

    def test_common_is_subset_of_every_sublist(self):
        common = set(self.captured.outputs["commonPathways"])
        for sublist in self.captured.outputs["paths_per_gene"]:
            assert common <= set(sublist)

    def test_paper_question_fine_grained_answer(self):
        """'Which of the input lists of genes is involved in this pathway?'
        — sublist i of paths_per_gene depends only on gene list i."""
        with TraceStore() as store:
            store.insert_trace(self.captured.trace)
            from repro.query.indexproj import IndexProjEngine
            from repro.query.base import LineageQuery

            engine = IndexProjEngine(store, self.workload.flow)
            for i in range(len(GK_DEFAULT_INPUT)):
                result = engine.lineage(
                    self.captured.run_id,
                    LineageQuery.create(
                        "genes2kegg", "paths_per_gene", (i,),
                        ["get_pathways_by_genes"],
                    ),
                )
                assert [b.key() for b in result.bindings] == [
                    ("get_pathways_by_genes", "genes_id_list", str(i))
                ]
                assert result.bindings[0].value == GK_DEFAULT_INPUT[i]

    def test_common_pathways_depend_on_all_genes(self):
        with TraceStore() as store:
            store.insert_trace(self.captured.trace)
            from repro.query.naive import NaiveEngine
            from repro.query.base import LineageQuery

            result = NaiveEngine(store).lineage(
                self.captured.run_id,
                LineageQuery.create(
                    "genes2kegg", "commonPathways", (), ["flatten_gene_lists"]
                ),
            )
            assert [b.key() for b in result.bindings] == [
                ("flatten_gene_lists", "x", "")
            ]
            assert result.bindings[0].value == GK_DEFAULT_INPUT

    def test_canonical_queries_build(self):
        focused = self.workload.focused_query()
        assert focused.focus == frozenset({"get_pathways_by_genes"})
        unfocused = self.workload.unfocused_query()
        assert len(unfocused.focus) == 5


class TestProteinDiscovery:
    def test_validates_clean(self):
        workload = protein_discovery_workload(chain_length=4)
        assert not any(i.is_error for i in validate(workload.flow))

    def test_chain_length_controls_processor_count(self):
        workload = protein_discovery_workload(chain_length=12)
        assert len(workload.flow.processors) == 12 + 2

    def test_longer_than_gk(self):
        gk = genes2kegg_workload()
        pd = protein_discovery_workload()
        assert len(pd.flow.processors) > 3 * len(gk.flow.processors)

    def test_output_per_article(self):
        workload = protein_discovery_workload(chain_length=3, batch=5)
        captured = capture_run(
            workload.flow, workload.inputs, runner=workload.runner()
        )
        terms = captured.outputs["protein_terms"]
        assert len(terms) == 5
        assert all(sub for sub in terms)  # every abstract yields terms

    def test_fine_grained_per_article_lineage(self):
        workload = protein_discovery_workload(chain_length=3, batch=4)
        captured = capture_run(
            workload.flow, workload.inputs, runner=workload.runner()
        )
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            from repro.query.indexproj import IndexProjEngine
            from repro.query.base import LineageQuery

            engine = IndexProjEngine(store, workload.flow)
            result = engine.lineage(
                captured.run_id,
                LineageQuery.create(
                    "protein_discovery", "protein_terms", (2,),
                    ["fetch_abstract"],
                ),
            )
            assert [b.key() for b in result.bindings] == [
                ("fetch_abstract", "id", "2")
            ]
            assert result.bindings[0].value == workload.inputs["pubmed_ids"][2]


class TestPopulateStore:
    def test_multiple_runs_accumulate(self):
        workload = genes2kegg_workload()
        with TraceStore() as store:
            run_ids = populate_store(
                store, workload.flow, workload.inputs, runs=3,
                runner=workload.runner(),
            )
            assert len(run_ids) == 3
            assert store.run_ids() == run_ids
            per_run = store.record_count(run_ids[0])
            assert store.record_count() == 3 * per_run

    def test_run_prefix(self):
        workload = genes2kegg_workload()
        with TraceStore() as store:
            run_ids = populate_store(
                store, workload.flow, workload.inputs, runs=2,
                runner=workload.runner(), run_prefix="sweep",
            )
            assert all(run_id.startswith("sweep-") for run_id in run_ids)
