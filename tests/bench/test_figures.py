"""Smoke + shape tests for the experiment drivers (repro.bench.figures).

Each driver runs at quick scale; beyond not crashing, we assert the
*qualitative shape* the paper reports for that table/figure — the
machine-independent part of the reproduction.
"""

import pytest

from repro.bench import figures
from repro.bench.harness import clear_store_cache


@pytest.fixture(autouse=True, scope="module")
def _cleanup():
    yield
    clear_store_cache()


class TestScales:
    def test_known_scales(self):
        assert figures.scale_config("quick")
        assert figures.scale_config("paper")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            figures.scale_config("huge")

    def test_registry_lists_every_experiment(self):
        assert set(figures.ALL_EXPERIMENTS) == {
            "fig4", "table1", "fig6", "fig7", "fig8", "fig9", "fig10",
        }


class TestTable1:
    def test_exact_record_formula(self):
        """records = 6ld + 3d^2 + 2d + 4: 4ld chain io rows + 3d^2 final
        cross-product io rows + 2 generator rows + (2ld + 2d + 2) transfer
        rows.  Documented in EXPERIMENTS.md."""
        rows = figures.table1_trace_sizes("quick")
        for row in rows:
            l, d = row["l"], row["d"]
            assert row["records"] == 6 * l * d + 3 * d * d + 2 * d + 4

    def test_counts_grow_in_both_dimensions(self):
        rows = figures.table1_trace_sizes("quick")
        by_config = {(r["d"], r["l"]): r["records"] for r in rows}
        ds = sorted({d for d, _ in by_config})
        ls = sorted({l for _, l in by_config})
        for d in ds:
            counts = [by_config[(d, l)] for l in ls]
            assert counts == sorted(counts)  # grows with l
        for l in ls:
            counts = [by_config[(d, l)] for d in ds]
            assert counts == sorted(counts)  # grows with d


class TestFig6:
    def test_ni_time_grows_slowly_with_db_size(self):
        rows = figures.fig6_db_size("quick")
        assert rows[-1]["records"] > 4 * rows[0]["records"]
        # The paper: ~20% growth for 10x records.  Allow generous noise:
        # the growth factor must stay far below the record growth factor.
        record_growth = rows[-1]["records"] / rows[0]["records"]
        time_growth = rows[-1]["naive_ms"] / rows[0]["naive_ms"]
        assert time_growth < record_growth
        # SQL round-trips are size-independent: pure index lookups.
        assert rows[0]["sql_queries"] == rows[-1]["sql_queries"]


class TestFig7:
    def test_query_complexity_independent_of_d(self):
        rows = figures.fig7_list_size("quick")
        by_l = {}
        for row in rows:
            by_l.setdefault(row["l"], []).append(row)
        for l_rows in by_l.values():
            queries = {row["sql_queries"] for row in l_rows}
            assert len(queries) == 1  # same hop count for every d


class TestFig8:
    def test_t1_grows_with_l(self):
        rows = figures.fig8_preprocessing("quick")
        times = [row["t1_ms"] for row in rows]
        assert times[-1] > times[0]
        # Sub-second for <= 100-node graphs (paper's claim, generous bound).
        for row in rows:
            if row["graph_nodes"] <= 102:
                assert row["t1_ms"] < 1000.0

    def test_visited_ports_scale_with_graph(self):
        rows = figures.fig8_preprocessing("quick")
        visited = [row["visited_ports"] for row in rows]
        assert visited == sorted(visited)


class TestFig9:
    def test_indexproj_beats_ni_and_ni_grows_with_l(self):
        rows = figures.fig9_strategies("quick")
        ni = {
            (r["d"], r["l"]): r for r in rows if r["strategy"] == "NI"
        }
        cached = {
            (r["d"], r["l"]): r
            for r in rows
            if r["strategy"] == "INDEXPROJ-cached"
        }
        for key, ni_row in ni.items():
            assert cached[key]["ms"] < ni_row["ms"]
            assert cached[key]["sql_queries"] == 1
            assert ni_row["sql_queries"] > 10
        for d in {d for d, _ in ni}:
            ls = sorted(l for dd, l in ni if dd == d)
            ni_queries = [ni[(d, l)]["sql_queries"] for l in ls]
            assert ni_queries == sorted(ni_queries)  # NI cost grows with l


class TestFig10:
    def test_cost_grows_with_focus_size(self):
        rows = figures.fig10_partial_focus("quick")
        sizes = [row["focus_size"] for row in rows]
        queries = [row["sql_queries"] for row in rows]
        assert sizes == sorted(sizes)
        assert queries == sorted(queries)
        # One lookup per focus input port (single-input chain processors).
        for row in rows:
            assert row["sql_queries"] == row["focus_size"]


class TestFig4:
    def test_multirun_shape(self):
        rows = figures.fig4_multirun("quick")
        workloads = {row["workload"] for row in rows}
        assert workloads == {"genes2kegg", "protein_discovery"}
        for workload in workloads:
            for mode in ("focused", "unfocused"):
                series = sorted(
                    (r for r in rows
                     if r["workload"] == workload and r["mode"] == mode),
                    key=lambda r: r["runs"],
                )
                # NI total grows with the number of runs in scope.
                naive = [r["naive_ms"] for r in series]
                assert naive[-1] > naive[0]
        # Unfocused-PD is the most expensive configuration at max runs.
        last = {
            (r["workload"], r["mode"]): r["indexproj_ms"]
            for r in rows
            if r["runs"] == max(x["runs"] for x in rows)
        }
        assert last[("protein_discovery", "unfocused")] == max(last.values())
