"""Tests for table rendering and bench records (repro.bench.reporting)."""

import json
from pathlib import Path

import pytest

from repro.bench.reporting import (
    BENCH_SCHEMA,
    format_table,
    pivot,
    validate_bench_payload,
    write_bench_json,
    write_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table([{"l": 10, "ms": 1.5}, {"l": 150, "ms": 20.25}])
        lines = text.splitlines()
        assert lines[0].split() == ["l", "ms"]
        assert "--" in lines[1]
        assert lines[2].startswith("10")
        assert "20.250" in lines[3]

    def test_title(self):
        text = format_table([{"a": 1}], title="Fig. 9")
        assert text.splitlines()[0] == "Fig. 9"

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_floats_fixed_precision(self):
        text = format_table([{"x": 0.12345}])
        assert "0.123" in text and "0.1234" not in text


class TestPivot:
    def test_table1_layout(self):
        rows = [
            {"d": 10, "l": 10, "records": 626},
            {"d": 10, "l": 28, "records": 1346},
            {"d": 25, "l": 10, "records": 2306},
        ]
        pivoted = pivot(rows, index="d", column="l", value="records")
        assert pivoted == [
            {"d": 10, "10": 626, "28": 1346},
            {"d": 25, "10": 2306},
        ]


class TestWriteReport:
    def test_sections_concatenated(self, tmp_path):
        path = str(tmp_path / "report.txt")
        write_report(path, ["alpha", "beta"])
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert "alpha\n\nbeta\n\n" == content


class TestBenchSchema:
    PAYLOAD = {
        "bench": "demo",
        "scale": "quick",
        "rows": [{"ms": 1.5}],
    }

    def test_write_stamps_schema_tag(self, tmp_path):
        path = str(tmp_path / "BENCH_demo.json")
        write_bench_json(path, dict(self.PAYLOAD))
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["schema"] == BENCH_SCHEMA == "repro.bench/1"
        assert record["rows"] == [{"ms": 1.5}]

    def test_validate_accepts_stamped_payload(self):
        payload = dict(self.PAYLOAD, schema=BENCH_SCHEMA)
        assert validate_bench_payload(payload) is payload

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": "repro.bench/0"},
            {"bench": ""},
            {"scale": 3},
            {"rows": {"not": "a list"}},
            {"rows": ["not a dict"]},
        ],
    )
    def test_validate_rejects_malformed(self, mutation):
        payload = {**self.PAYLOAD, "schema": BENCH_SCHEMA, **mutation}
        with pytest.raises(ValueError, match="invalid benchmark record"):
            validate_bench_payload(payload)

    def test_write_rejects_malformed(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json(str(tmp_path / "x.json"), {"bench": "demo"})

    def test_every_committed_record_validates(self):
        """The archived BENCH_*.json records at the repository root all
        carry the shared repro.bench/1 shape."""
        records = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert records, "no committed BENCH_*.json records found"
        for path in records:
            with open(path, encoding="utf-8") as handle:
                validate_bench_payload(json.load(handle))
