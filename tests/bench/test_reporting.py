"""Tests for table rendering (repro.bench.reporting)."""

from repro.bench.reporting import format_table, pivot, write_report


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table([{"l": 10, "ms": 1.5}, {"l": 150, "ms": 20.25}])
        lines = text.splitlines()
        assert lines[0].split() == ["l", "ms"]
        assert "--" in lines[1]
        assert lines[2].startswith("10")
        assert "20.250" in lines[3]

    def test_title(self):
        text = format_table([{"a": 1}], title="Fig. 9")
        assert text.splitlines()[0] == "Fig. 9"

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_floats_fixed_precision(self):
        text = format_table([{"x": 0.12345}])
        assert "0.123" in text and "0.1234" not in text


class TestPivot:
    def test_table1_layout(self):
        rows = [
            {"d": 10, "l": 10, "records": 626},
            {"d": 10, "l": 28, "records": 1346},
            {"d": 25, "l": 10, "records": 2306},
        ]
        pivoted = pivot(rows, index="d", column="l", value="records")
        assert pivoted == [
            {"d": 10, "10": 626, "28": 1346},
            {"d": 25, "10": 2306},
        ]


class TestWriteReport:
    def test_sections_concatenated(self, tmp_path):
        path = str(tmp_path / "report.txt")
        write_report(path, ["alpha", "beta"])
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert "alpha\n\nbeta\n\n" == content
