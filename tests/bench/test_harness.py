"""Tests for the benchmark harness (repro.bench.harness)."""

import time

from repro.bench.harness import (
    Timer,
    Timing,
    best_of,
    clear_store_cache,
    prepare_store,
)


class TestTiming:
    def test_best_and_median(self):
        timing = Timing(samples=[0.3, 0.1, 0.2])
        assert timing.best == 0.1
        assert timing.median == 0.2
        assert timing.best_ms == 100.0

    def test_best_of_runs_requested_times(self):
        calls = []
        timing, result = best_of(lambda: calls.append(1) or len(calls), repeats=4)
        assert len(calls) == 4
        assert result == 4
        assert len(timing.samples) == 4

    def test_best_of_minimum_one_repeat(self):
        timing, _ = best_of(lambda: None, repeats=0)
        assert len(timing.samples) == 1

    def test_timer_context(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01
        assert timer.ms >= 10.0


class TestPrepareStore:
    def test_store_contents(self):
        prepared = prepare_store(3, 4, runs=2, cache=False)
        try:
            assert prepared.length == 3
            assert prepared.list_size == 4
            assert len(prepared.run_ids) == 2
            assert prepared.record_count == prepared.store.record_count()
            assert prepared.record_count > 0
        finally:
            prepared.close()

    def test_cache_reuses_identical_configs(self):
        first = prepare_store(2, 3, runs=1, cache=True)
        second = prepare_store(2, 3, runs=1, cache=True)
        assert first is second
        clear_store_cache()

    def test_cache_distinguishes_configs(self):
        first = prepare_store(2, 3, runs=1, cache=True)
        second = prepare_store(2, 4, runs=1, cache=True)
        assert first is not second
        clear_store_cache()

    def test_no_cache_builds_fresh(self):
        first = prepare_store(2, 3, runs=1, cache=False)
        second = prepare_store(2, 3, runs=1, cache=False)
        try:
            assert first is not second
        finally:
            first.close()
            second.close()

    def test_file_backed_store(self, tmp_path):
        path = str(tmp_path / "bench.db")
        prepared = prepare_store(2, 2, runs=1, path=path)
        try:
            assert prepared.store.path == path
        finally:
            prepared.close()
