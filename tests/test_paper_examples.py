"""Executable transcriptions of the paper's worked examples.

Each test quotes the paper (section in the docstring) and checks that the
implementation reproduces the published behaviour exactly.
"""

from repro.engine.iteration import PortValue, evaluate
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values.index import Index

from tests.conftest import build_fig3_workflow


class TestSection32SingleInputExample:
    """'For example, let v = [[a, b]], and delta_s(X) = 2 ... we have
    (eval_2 P [[a, b]]) = [["a isNice", "b isNice"]]'."""

    def test_eval2(self):
        result = evaluate(
            lambda args: {"y": f"{args['x']} isNice"},
            [PortValue("x", [["a", "b"]], 2)],
            ["y"],
        )
        assert result.outputs["y"] == [["a isNice", "b isNice"]]


class TestSection32ThreeInputExample:
    """'(eval_2 P <a, c, b>) = [[y_11 ... y_1m] ... [y_n1 ... y_nm]]' with
    mismatches (1, 0, 1) — c is not involved in the iteration."""

    def test_eval_shape(self):
        a = [f"a{i}" for i in range(1, 4)]        # n = 3
        c = ["c"]
        b = [f"b{j}" for j in range(1, 3)]        # m = 2
        result = evaluate(
            lambda args: {"Y": (args["X1"], args["X3"])},
            [PortValue("X1", a, 1), PortValue("X2", c, 0), PortValue("X3", b, 1)],
            ["Y"],
        )
        y = result.outputs["Y"]
        assert len(y) == 3 and all(len(row) == 2 for row in y)
        assert y[0][0] == ("a1", "b1")
        assert y[2][1] == ("a3", "b2")


class TestSection23TraceExample:
    """The trace of Fig. 3: Q per-element events, R one whole-value event,
    and |a| * |b| = n * m events for P, each consuming one element of a,
    one element of b, and the entire list c."""

    def setup_method(self):
        self.flow = build_fig3_workflow()
        self.captured = capture_run(
            self.flow, {"v": ["v0", "v1"], "w": "w", "c": ["c0", "c1"]}
        )
        self.trace = self.captured.trace

    def test_q_events_fine_grained(self):
        events = self.trace.instances_of("Q")
        assert len(events) == 2
        for i, event in enumerate(events):
            assert event.inputs[0].index == Index(i)
            assert event.outputs[0].index == Index(i)

    def test_r_event_whole_value(self):
        events = self.trace.instances_of("R")
        assert len(events) == 1
        assert events[0].inputs[0].index == Index()
        assert events[0].outputs[0].index == Index()

    def test_p_events_consume_element_element_whole(self):
        n = 2          # |a| = |v|
        m = 3          # |b| = synth width of R
        events = self.trace.instances_of("P")
        assert len(events) == n * m
        seen_qs = set()
        for event in events:
            by_port = {b.port: b for b in event.inputs}
            q = event.outputs[0].index
            seen_qs.add(q)
            # q = concatenation of the X1 and X3 fragments (X2 contributes
            # nothing), i.e. <P:X1[h]>, <P:X2[]>, <P:X3[l]> -> <P:Y[h, l]>.
            assert by_port["X1"].index + by_port["X3"].index == q
            assert by_port["X2"].index == Index()
        assert seen_qs == {Index(h, l) for h in range(n) for l in range(m)}


class TestSection24LineageUnfolding:
    """'lin(<P:Y[h,l]>, {Q, R}) = {<Q:X[h]>, <R:X[]>}' and the coarse
    variant 'lin(<P:Y[]>, {Q, R}) = {<Q:X[]>, <R:X[]>}'."""

    def setup_method(self):
        self.flow = build_fig3_workflow()
        self.captured = capture_run(
            self.flow, {"v": ["v0", "v1", "v2"], "w": "w", "c": ["c0"]}
        )
        self.store = TraceStore()
        self.store.insert_trace(self.captured.trace)

    def teardown_method(self):
        self.store.close()

    def query(self, engine_cls, index):
        query = LineageQuery.create("P", "Y", index, ["Q", "R"])
        if engine_cls is NaiveEngine:
            engine = NaiveEngine(self.store)
        else:
            engine = IndexProjEngine(self.store, self.flow)
        return engine.lineage(self.captured.run_id, query)

    def test_fine_grained_unfolding(self):
        h, l = 2, 1
        for engine_cls in (NaiveEngine, IndexProjEngine):
            result = self.query(engine_cls, (h, l))
            assert sorted(b.key() for b in result.bindings) == [
                ("Q", "X", str(h)),
                ("R", "X", ""),
            ]

    def test_coarse_unfolding_covers_whole_inputs(self):
        """With the empty index the answer covers Q's whole input list and
        R's whole input — reported per recorded event granularity."""
        for engine_cls in (NaiveEngine, IndexProjEngine):
            result = self.query(engine_cls, ())
            keys = sorted(b.key() for b in result.bindings)
            assert keys == [
                ("Q", "X", "0"), ("Q", "X", "1"), ("Q", "X", "2"),
                ("R", "X", ""),
            ]


class TestSection22GenesExample:
    """'the pathways in sub-list i in paths_per_gene depend only on the
    genes in the corresponding sub-list i in list_of_geneIDList, while all
    pathways in commonPathways depend on all input genes'."""

    def test_fine_and_coarse_dependencies(self):
        from repro.testbed.workloads import genes2kegg_workload

        workload = genes2kegg_workload()
        inputs = {"list_of_geneIDList": [["20816", "26416"], ["328788"]]}
        captured = capture_run(workload.flow, inputs, runner=workload.runner())
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            engine = IndexProjEngine(store, workload.flow)
            # Sub-list 1 of paths_per_gene <- gene sub-list 1 only.
            result = engine.lineage(
                captured.run_id,
                LineageQuery.create(
                    "genes2kegg", "paths_per_gene", (1,),
                    ["get_pathways_by_genes"],
                ),
            )
            assert [b.key() for b in result.bindings] == [
                ("get_pathways_by_genes", "genes_id_list", "1")
            ]
            assert result.bindings[0].value == ["328788"]
            # commonPathways <- the flattened list of ALL genes.
            result = engine.lineage(
                captured.run_id,
                LineageQuery.create(
                    "genes2kegg", "commonPathways", (0,),
                    ["get_pathways_common"],
                ),
            )
            assert [b.key() for b in result.bindings] == [
                ("get_pathways_common", "genes_id_list", "")
            ]
            assert result.bindings[0].value == ["20816", "26416", "328788"]
