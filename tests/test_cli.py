"""End-to-end tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_builtin_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "genes2kegg" in out
        assert "protein_discovery" in out


class TestRunCommand:
    def test_run_workload(self, tmp_path, capsys):
        db = str(tmp_path / "t.db")
        assert main(["run", "--workload", "gk", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "trace records" in out
        assert "paths_per_gene" in out

    def test_run_synthetic_multiple(self, tmp_path, capsys):
        db = str(tmp_path / "t.db")
        assert main(
            ["run", "--synthetic-l", "3", "--synthetic-d", "4", "--db", db,
             "--runs", "2"]
        ) == 0
        assert capsys.readouterr().out.count("run ") == 2

    def test_run_flow_file(self, tmp_path, capsys):
        from repro.workflow import serialize
        from tests.conftest import build_diamond_workflow

        flow_path = str(tmp_path / "wf.json")
        serialize.save(build_diamond_workflow(), flow_path)
        inputs_path = str(tmp_path / "inputs.json")
        with open(inputs_path, "w", encoding="utf-8") as handle:
            json.dump({"size": 2}, handle)
        db = str(tmp_path / "t.db")
        assert main(
            ["run", "--flow", flow_path, "--inputs", inputs_path, "--db", db]
        ) == 0
        assert "out" in capsys.readouterr().out

    def test_run_without_flow_spec_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--db", str(tmp_path / "t.db")])


class TestQueryCommand:
    @pytest.fixture
    def populated_db(self, tmp_path):
        db = str(tmp_path / "t.db")
        main(["run", "--synthetic-l", "2", "--synthetic-d", "3", "--db", db,
              "--runs", "2"])
        return db

    def test_indexproj_query(self, populated_db, capsys):
        capsys.readouterr()
        assert main(
            ["query", "--db", populated_db, "--node", "2TO1_FINAL",
             "--port", "y", "--index", "0.1", "--focus", "LISTGEN_1",
             "--synthetic-l", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "lin(<2TO1_FINAL:y[0.1]>" in out
        assert out.count("<LISTGEN_1:size[]>") == 2  # both runs

    def test_naive_query(self, populated_db, capsys):
        capsys.readouterr()
        assert main(
            ["query", "--db", populated_db, "--node", "2TO1_FINAL",
             "--port", "y", "--index", "0.1",
             "--focus", "CHAIN1_0,CHAIN2_1", "--strategy", "naive"]
        ) == 0
        out = capsys.readouterr().out
        assert "<CHAIN1_0:x[0]>" in out
        assert "<CHAIN2_1:x[1]>" in out

    def test_query_single_run_scope(self, populated_db, capsys):
        from repro.provenance.store import TraceStore

        with TraceStore(populated_db) as store:
            run_id = store.run_ids()[0]
        capsys.readouterr()
        assert main(
            ["query", "--db", populated_db, "--run", run_id,
             "--node", "2TO1_FINAL", "--port", "y", "--index", "0.0",
             "--focus", "LISTGEN_1", "--synthetic-l", "2"]
        ) == 0
        assert capsys.readouterr().out.count("run ") == 1

    def test_query_empty_store_fails(self, tmp_path, capsys):
        from repro.provenance.store import TraceStore

        db = str(tmp_path / "empty.db")
        TraceStore(db).close()
        assert main(
            ["query", "--db", db, "--node", "P", "--port", "y",
             "--strategy", "naive"]
        ) == 1


class TestBenchCommand:
    def test_single_experiment(self, capsys):
        assert main(["bench", "--experiment", "fig8", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "t1_ms" in out


class TestExportCommand:
    def test_dot_export(self, tmp_path, capsys):
        dot_path = str(tmp_path / "wf.dot")
        assert main(["export", "--workload", "gk", "--dot", dot_path]) == 0
        with open(dot_path, encoding="utf-8") as handle:
            content = handle.read()
        assert content.startswith("digraph")
        assert "get_pathways_by_genes" in content
