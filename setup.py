"""Legacy setup shim.

The environment this reproduction targets may lack the ``wheel`` package
that PEP 660 editable installs require; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work everywhere.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
