#!/usr/bin/env python3
"""The long-path workload (PD): protein terms from article abstracts.

The BioAID-style protein-discovery workflow is topologically the opposite
of genes2Kegg: one long chain of per-abstract processing steps.  Long
paths are where the naive strategy hurts — every lineage query walks every
hop — while INDEXPROJ's cost stays flat.

This example runs the workflow over a batch of (synthetic) PubMed IDs,
then compares the two strategies on the same focused query, reporting
both wall time and the machine-independent SQL round-trip counts.

Run:  python examples/protein_discovery.py
"""

from repro import IndexProjEngine, LineageQuery, NaiveEngine, TraceStore, capture_run
from repro.testbed.workloads import protein_discovery_workload


def main() -> None:
    workload = protein_discovery_workload(chain_length=30, batch=6)
    print(f"workflow: {len(workload.flow.processors)} processors in one chain")
    print(f"input: {workload.inputs['pubmed_ids']}")

    captured = capture_run(
        workload.flow, workload.inputs, runner=workload.runner()
    )
    print("\nextracted protein terms per article:")
    for pmid, terms in zip(
        workload.inputs["pubmed_ids"], captured.outputs["protein_terms"]
    ):
        print(f"    {pmid}: {terms}")

    with TraceStore() as store:
        store.insert_trace(captured.trace)
        print(f"\ntrace stored: {store.record_count()} records")

        # Which article produced the terms in output slot 3?
        query = LineageQuery.create(
            "protein_discovery", "protein_terms", [3], focus=["fetch_abstract"]
        )
        print(f"\nquery: {query}")

        indexproj = IndexProjEngine(store, workload.flow)
        ip_result = indexproj.lineage(captured.run_id, query)
        naive = NaiveEngine(store)
        ni_result = naive.lineage(captured.run_id, query)

        print("\nanswer (both strategies agree:",
              ip_result.binding_keys() == ni_result.binding_keys(), "):")
        for binding in ip_result.bindings:
            print(f"    {binding} = {binding.value!r}")

        print("\ncost comparison on this 32-processor path:")
        print(f"    naive     : {ni_result.stats.queries:4d} SQL lookups, "
              f"{ni_result.total_seconds * 1000:7.2f} ms")
        print(f"    INDEXPROJ : {ip_result.stats.queries:4d} SQL lookups, "
              f"{ip_result.total_seconds * 1000:7.2f} ms")
        print("\nthe gap grows linearly with the chain length — that is "
              "Fig. 9 of the paper")


if __name__ == "__main__":
    main()
