#!/usr/bin/env python3
"""Quickstart: build a workflow, run it, store its trace, query lineage.

This walks the full pipeline on a small diamond-shaped dataflow:

    wf:size -> GEN -> (A, B) -> F (cross product) -> wf:out

GEN emits a list; A and B implicitly iterate over its elements (their
ports declare atomic strings but receive a list — Taverna's depth-mismatch
iteration); F combines both branches with a binary cross product, so
``out[i][j]`` was computed from ``a[i]`` and ``b[j]``.  The lineage query
at the end recovers exactly that relationship from the trace.

Run:  python examples/quickstart.py
"""

from repro import (
    DataflowBuilder,
    IndexProjEngine,
    LineageQuery,
    NaiveEngine,
    TraceStore,
    capture_run,
)


def build_workflow():
    """A diamond dataflow with one generator, two branches, one join."""
    return (
        DataflowBuilder("wf")
        .input("size", "integer")
        .output("out", "list(list(string))")
        .processor(
            "GEN",
            inputs=[("size", "integer")],
            outputs=[("list", "list(string)")],
            operation="list_generator",
            config={"out": "list", "prefix": "item"},
        )
        .processor(
            "A",
            inputs=[("x", "string")],           # declared atomic ...
            outputs=[("y", "string")],
            operation="tag",
            config={"suffix": "-a"},
        )
        .processor(
            "B",
            inputs=[("x", "string")],           # ... receives a list:
            outputs=[("y", "string")],           # implicit iteration.
            operation="tag",
            config={"suffix": "-b"},
        )
        .processor(
            "F",
            inputs=[("a", "string"), ("b", "string")],
            outputs=[("y", "string")],
            operation="concat_pair",
        )
        .arcs(
            ("wf:size", "GEN:size"),
            ("GEN:list", "A:x"),
            ("GEN:list", "B:x"),
            ("A:y", "F:a"),
            ("B:y", "F:b"),
            ("F:y", "wf:out"),
        )
        .build()
    )


def main() -> None:
    flow = build_workflow()

    # 1. Execute the workflow, capturing the full provenance trace.
    captured = capture_run(flow, {"size": 3})
    print("workflow output (3x3 cross product):")
    for row in captured.outputs["out"]:
        print("   ", row)
    print(f"\ntrace: {len(captured.trace.xforms)} xform events, "
          f"{len(captured.trace.xfers)} xfer events, "
          f"{captured.trace.record_count} records\n")

    # 2. Store the trace in the relational provenance database.
    with TraceStore() as store:                 # in-memory; pass a path to persist
        store.insert_trace(captured.trace)

        # 3. Ask: where did out[1][2] come from?  Focus on A and B.
        query = LineageQuery.create("wf", "out", [1, 2], focus=["A", "B"])
        print(f"query: {query}\n")

        # INDEXPROJ: traverses the 4-node workflow graph, then runs exactly
        # one trace lookup per focus input port.
        engine = IndexProjEngine(store, flow)
        result = engine.lineage(captured.run_id, query)
        print("INDEXPROJ answer "
              f"({result.stats.queries} SQL lookups, "
              f"{result.total_seconds * 1000:.2f} ms):")
        for binding in result.bindings:
            print(f"    {binding} = {binding.value!r}")

        # The naive strategy walks the provenance graph hop by hop and
        # returns the same answer — at many times the lookup count.
        naive = NaiveEngine(store).lineage(captured.run_id, query)
        print(f"\nnaive answer agrees: "
              f"{naive.binding_keys() == result.binding_keys()} "
              f"({naive.stats.queries} SQL lookups)")


if __name__ == "__main__":
    main()
