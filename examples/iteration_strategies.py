#!/usr/bin/env python3
"""Iteration strategies: cross product, dot product, and combinator trees.

The paper formalizes Taverna's default *cross product* iteration (Def. 2)
and notes (footnote 7) that Taverna also offers a *dot* ("zip") combinator
plus constructors for combining both into complex expressions.  This
reproduction implements all of it, and — crucially — the index projection
rule extends unchanged: every port's index fragment is still a contiguous
slice of the instance index, so INDEXPROJ answers fine-grained lineage
queries over any strategy tree.

The scenario: samples with per-sample barcodes (paired data → zip), each
combination tested against a panel of reference assays (→ cross).

Run:  python examples/iteration_strategies.py
"""

from repro import (
    DataflowBuilder,
    IndexProjEngine,
    LineageQuery,
    TraceStore,
    capture_run,
    default_registry,
)


def op_assay(inputs, config):
    """Pretend lab step: test one (sample, barcode) pair on one assay."""
    return {
        "result": f"{inputs['sample']}/{inputs['barcode']} vs "
                  f"{inputs['assay']}: ok"
    }


def build_workflow():
    return (
        DataflowBuilder("lab")
        .input("samples", "list(string)")
        .input("barcodes", "list(string)")
        .input("assays", "list(string)")
        .output("results", "list(list(string))")
        .processor(
            "run_assay",
            inputs=[
                ("sample", "string"),
                ("barcode", "string"),
                ("assay", "string"),
            ],
            outputs=[("result", "string")],
            operation="assay",
            # samples[i] is paired with barcodes[i] (dot), and every pair
            # is tested against every assay (cross):
            iteration={"cross": [{"dot": ["sample", "barcode"]}, "assay"]},
            config={},
        )
        .arcs(
            ("lab:samples", "run_assay:sample"),
            ("lab:barcodes", "run_assay:barcode"),
            ("lab:assays", "run_assay:assay"),
            ("run_assay:result", "lab:results"),
        )
        .build()
    )


def main() -> None:
    registry = default_registry().extended()
    registry.register("assay", op_assay)
    flow = build_workflow()

    inputs = {
        "samples": ["sampleA", "sampleB"],
        "barcodes": ["bc-17", "bc-42"],
        "assays": ["assay-p53", "assay-kras", "assay-egfr"],
    }
    captured = capture_run(flow, inputs, registry=registry)

    print("strategy: cross(dot(sample, barcode), assay)")
    print("results[i][j] pairs sample i with barcode i, against assay j:\n")
    for i, row in enumerate(captured.outputs["results"]):
        for j, cell in enumerate(row):
            print(f"    results[{i}][{j}] = {cell}")

    with TraceStore() as store:
        store.insert_trace(captured.trace)
        engine = IndexProjEngine(store, flow)
        query = LineageQuery.create(
            "lab", "results", [1, 2], focus=["run_assay"]
        )
        print(f"\nlineage of results[1][2]  ({query}):")
        for binding in engine.lineage(captured.run_id, query).bindings:
            print(f"    {binding} = {binding.value!r}")
        print(
            "\nthe zipped ports (sample, barcode) share index [1]; the "
            "crossed port (assay)\npicks index [2] — the projection rule "
            "recovered the combinator structure\nwithout touching any trace "
            "rows except the three above."
        )


if __name__ == "__main__":
    main()
