#!/usr/bin/env python3
"""Debugging a partial failure with error tokens and provenance.

A batch run calls a flaky service; one element fails mid-batch.  With
``error_handling="token"`` (Taverna semantics) the failure does not abort
the run: the failing instance emits an error token that flows through the
rest of the pipeline element-wise, while sibling elements complete.

Provenance then answers the two debugging questions directly:

* *lineage* of the errored output element → the culprit input;
* *impact* of the culprit input → the full blast radius to retract.

Run:  python examples/error_debugging.py
"""

from repro import (
    DataflowBuilder,
    LineageQuery,
    NaiveEngine,
    TraceStore,
    WorkflowRunner,
    default_registry,
)
from repro.engine.errors import is_error
from repro.provenance.capture import capture_run
from repro.query.impact import ImpactQuery, IndexProjImpactEngine


def flaky_enrich(inputs, config):
    """A 'remote service' that chokes on one particular record."""
    record = inputs["record"]
    if "pmid:1003" in record:
        raise TimeoutError(f"enrichment service timed out on {record!r}")
    return {"enriched": f"{record}+metadata"}


def build_flow():
    return (
        DataflowBuilder("batch")
        .input("records", "list(string)")
        .output("published", "list(string)")
        .processor("enrich", inputs=[("record", "string")],
                   outputs=[("enriched", "string")], operation="flaky_enrich")
        .processor("format", inputs=[("x", "string")],
                   outputs=[("y", "string")], operation="tag",
                   config={"suffix": " [published]"})
        .arc("batch:records", "enrich:record")
        .arc("enrich:enriched", "format:x")
        .arc("format:y", "batch:published")
        .build()
    )


def main() -> None:
    registry = default_registry().extended()
    registry.register("flaky_enrich", flaky_enrich)
    flow = build_flow()
    records = [f"pmid:{1000 + i}" for i in range(6)]

    runner = WorkflowRunner(registry, error_handling="token")
    captured = capture_run(flow, {"records": records}, runner=runner)

    print("batch results (the run survived the failure):")
    errored = []
    for i, value in enumerate(captured.outputs["published"]):
        marker = "  <-- ERROR" if is_error(value) else ""
        print(f"    published[{i}] = {value!r}{marker}")
        if is_error(value):
            errored.append(i)

    with TraceStore() as store:
        store.insert_trace(captured.trace)
        for i in errored:
            print(f"\nlineage of the errored element published[{i}]:")
            result = NaiveEngine(store).lineage(
                captured.run_id,
                LineageQuery.create("batch", "published", [i], ["enrich"]),
            )
            culprit = result.bindings[0]
            print(f"    culprit: {culprit} = {culprit.value!r}")

            print(f"\nimpact of {culprit.value!r} (what must be retracted):")
            impact = IndexProjImpactEngine(store, flow).impact(
                captured.run_id,
                ImpactQuery.create(
                    "batch", "records", [i], ["format"]
                ),
            )
            for binding in impact.bindings:
                print(f"    {binding} = {binding.value!r}")

    print(
        "\nreading: element-wise iteration confined the failure to one "
        "element; provenance\npinpointed the exact input and the exact set "
        "of contaminated outputs — nothing\nelse needs re-running."
    )


if __name__ == "__main__":
    main()
