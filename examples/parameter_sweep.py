#!/usr/bin/env python3
"""Multi-run lineage: querying across a parameter sweep (Section 3.4).

A standard scientific-computing pattern: run the same workflow many times
while sweeping an input parameter, then ask provenance questions across
the whole batch ("report the lineage of binding b at processor P, across
a set of executions").

INDEXPROJ's decisive property here: the workflow-graph traversal (step s1)
is *shared by every run* — one plan, then one cheap indexed lookup per run.
The naive strategy must re-traverse the provenance graph of each run.

Run:  python examples/parameter_sweep.py
"""

from repro import IndexProjEngine, LineageQuery, NaiveEngine, TraceStore
from repro.engine.executor import WorkflowRunner
from repro.provenance.capture import capture_run
from repro.testbed.generator import chain_product_workflow


def main() -> None:
    flow = chain_product_workflow(40)
    runner = WorkflowRunner()

    # Sweep the ListSize parameter across 8 runs.
    sweep = [4, 6, 8, 10, 12, 14, 16, 18]
    print(f"sweeping ListSize over {sweep} on a {len(flow.processors)}-"
          "processor workflow")
    with TraceStore() as store:
        run_ids = []
        for d in sweep:
            captured = capture_run(flow, {"ListSize": d}, runner=runner)
            store.insert_trace(captured.trace)
            run_ids.append(captured.run_id)
        print(f"stored {len(run_ids)} runs, {store.record_count()} records\n")

        # Across all runs: what fed the first output element?
        query = LineageQuery.create(
            "2TO1_FINAL", "y", [0, 0], focus=["LISTGEN_1"]
        )
        print(f"query (over all {len(run_ids)} runs): {query}\n")

        indexproj = IndexProjEngine(store, flow)
        ip = indexproj.lineage_multirun(run_ids, query)
        print("INDEXPROJ:")
        print(f"    s1 (graph traversal, shared) : {ip.traversal_seconds * 1000:7.2f} ms")
        print(f"    s2 (lookups, per run)        : {ip.lookup_seconds * 1000:7.2f} ms")
        for run_id, d in zip(run_ids, sweep):
            binding = ip.per_run[run_id].bindings[0]
            print(f"    {run_id}: ListSize={d} -> {binding} = {binding.value!r}")

        ni = NaiveEngine(store).lineage_multirun(run_ids, query)
        agrees = all(
            ni.per_run[r].binding_keys() == ip.per_run[r].binding_keys()
            for r in run_ids
        )
        total_ni_queries = sum(r.stats.queries for r in ni.per_run.values())
        total_ip_queries = sum(r.stats.queries for r in ip.per_run.values())
        print(f"\nnaive agrees on every run: {agrees}")
        print(f"    naive     : {total_ni_queries:5d} SQL lookups, "
              f"{ni.total_seconds * 1000:8.2f} ms")
        print(f"    INDEXPROJ : {total_ip_queries:5d} SQL lookups, "
              f"{ip.total_seconds * 1000:8.2f} ms")


if __name__ == "__main__":
    main()
