#!/usr/bin/env python3
"""Impact analysis: forward provenance with the INDEXPROJ trick reversed.

Lineage answers "where did this output come from?".  The symmetric
question — "this input turned out to be bad; which results must be
retracted?" — is *impact* (forward provenance).  The paper's intensional
machinery runs in reverse: where backward projection slices an output
index into per-port fragments (Def. 4), forward projection embeds an
input fragment into an instance-index *pattern* (fixed at the port's
static slot, wildcard elsewhere) and looks up only the focus processors'
outputs.

Scenario: after publishing, the lab discovers that file ``data_b.csv``
was mislabelled.  Which validation results and which published report
rows does that file affect?

Run:  python examples/impact_analysis.py
"""

from repro import TraceStore, capture_run
from repro.query.impact import (
    ImpactQuery,
    IndexProjImpactEngine,
    NaiveImpactEngine,
    build_impact_plan,
)
from repro.testbed.workloads import file_loading_workload
from repro.workflow.depths import propagate_depths


def main() -> None:
    workload = file_loading_workload()
    files = workload.inputs["file_names"]
    bad = files.index("data_b.csv")
    print(f"input files: {files}")
    print(f"suspect: file_names[{bad}] = {files[bad]!r}\n")

    captured = capture_run(
        workload.flow, workload.inputs, runner=workload.runner()
    )
    with TraceStore() as store:
        store.insert_trace(captured.trace)
        analysis = propagate_depths(workload.flow)

        query = ImpactQuery.create(
            "file_loading", "file_names", [bad],
            focus=["check_record", "process"],
        )
        plan = build_impact_plan(analysis, query)
        print("forward plan (patterns, computed on the workflow graph only):")
        for trace_query in plan.trace_queries:
            print(f"    {trace_query}")

        engine = IndexProjImpactEngine(store, workload.flow, analysis=analysis)
        result = engine.impact(captured.run_id, query)
        print(f"\naffected results ({result.stats.queries} SQL lookups):")
        for binding in result.bindings:
            print(f"    {binding} = {binding.value!r}")

        naive = NaiveImpactEngine(store).impact(captured.run_id, query)
        print(f"\nextensional forward traversal agrees: "
              f"{naive.binding_keys() == result.binding_keys()} "
              f"({naive.stats.queries} SQL lookups)")

    print(
        "\nreading: the file's own validation verdict is pinned to its "
        f"index [{bad}] (fine-grained),\nwhile every processed report row "
        "is affected — the bulk DB load consumed all\nfiles together, so "
        "the honest blast radius downstream of it is everything."
    )


if __name__ == "__main__":
    main()
