#!/usr/bin/env python3
"""The paper's motivating workflow (Fig. 1): genes -> KEGG pathways.

The genes2Kegg workflow takes a *nested* list of gene-ID lists.  Its left
branch looks up the metabolic pathways of each gene sub-list separately —
Taverna's implicit iteration keeps the sub-list boundaries intact — while
its right branch flattens all genes together and retrieves the pathways
*common to every gene*.

The provenance question from the paper's introduction: **"why is this
particular pathway in the output?"** — i.e. which of the input gene lists
is involved in it?  Fine-grained lineage answers it precisely: sub-list
``i`` of ``paths_per_gene`` depends *only* on input sub-list ``i``, while
every entry of ``commonPathways`` depends on *all* input genes.

(The KEGG service is simulated with a deterministic synthetic catalog —
see DESIGN.md, "Substitutions".)

Run:  python examples/genes2kegg.py
"""

from repro import IndexProjEngine, LineageQuery, TraceStore, capture_run
from repro.testbed.workloads import genes2kegg_workload


def main() -> None:
    workload = genes2kegg_workload()
    gene_lists = [["mmu:20816", "mmu:26416"], ["mmu:328788"]]
    print("input gene lists:")
    for i, genes in enumerate(gene_lists):
        print(f"    [{i}] {genes}")

    captured = capture_run(
        workload.flow,
        {"list_of_geneIDList": gene_lists},
        runner=workload.runner(),
    )

    print("\npaths_per_gene (one pathway list per input sub-list):")
    for i, pathways in enumerate(captured.outputs["paths_per_gene"]):
        print(f"    [{i}] {pathways}")
    print("\ncommonPathways (involve ALL input genes):")
    for pathway in captured.outputs["commonPathways"]:
        print(f"    {pathway}")

    with TraceStore() as store:
        store.insert_trace(captured.trace)
        engine = IndexProjEngine(store, workload.flow)

        print("\n--- lineage: why is sub-list 1 of paths_per_gene there? ---")
        result = engine.lineage(
            captured.run_id,
            LineageQuery.create(
                "genes2kegg", "paths_per_gene", [1],
                focus=["get_pathways_by_genes"],
            ),
        )
        for binding in result.bindings:
            print(f"    {binding} = {binding.value!r}")
        print("    -> depends ONLY on input sub-list 1 (fine-grained)")

        print("\n--- lineage: what do the commonPathways depend on? ---")
        result = engine.lineage(
            captured.run_id,
            LineageQuery.create(
                "genes2kegg", "commonPathways", [0],
                focus=["get_pathways_common"],
            ),
        )
        for binding in result.bindings:
            print(f"    {binding} = {binding.value!r}")
        print("    -> depends on ALL genes: the flatten step destroyed "
              "granularity,\n       so provenance is (correctly) coarse "
              "through that branch")


if __name__ == "__main__":
    main()
