#!/usr/bin/env python3
"""The provenance-challenge scenario from the paper's introduction.

"A workflow loads data from files into a database, and then performs some
processing on the data.  It turns out that the database contains
unexpected values.  Provenance questions include, among others, whether
the appropriate checks were performed by the workflow, what results they
produced, and which input files were used for the loading."

This example runs that workflow (per-file read + validate, a bulk DB
load, per-row post-processing) and answers all three questions with
focused lineage queries — showing where fine granularity survives (the
per-file branch) and where it honestly cannot (through the black-box bulk
loader).

Run:  python examples/file_loading_challenge.py
"""

from repro import IndexProjEngine, LineageQuery, TraceStore, capture_run
from repro.testbed.workloads import file_loading_workload


def main() -> None:
    workload = file_loading_workload()
    files = workload.inputs["file_names"]
    print(f"input files: {files}\n")

    captured = capture_run(
        workload.flow, workload.inputs, runner=workload.runner()
    )
    print("validation_report:", captured.outputs["validation_report"])
    print("report (processed DB rows):")
    for row in captured.outputs["report"]:
        print(f"    {row}")

    with TraceStore() as store:
        store.insert_trace(captured.trace)
        engine = IndexProjEngine(store, workload.flow)
        run_id = captured.run_id

        print("\nQ1: were the checks performed, and what did they produce?")
        print("    (lineage of each validation result, focused on the reader)")
        for i in range(len(files)):
            result = engine.lineage(
                run_id,
                LineageQuery.create(
                    "file_loading", "validation_report", (i,), ["read_file"]
                ),
            )
            status = captured.outputs["validation_report"][i]
            source = result.bindings[0]
            print(f"    check[{i}] = {status!r:20}  <-  {source} "
                  f"= {source.value!r}")

        print("\nQ2: which input files were used for the loading?")
        print("    (lineage of one processed row, focused on the reader)")
        result = engine.lineage(
            run_id,
            LineageQuery.create("file_loading", "report", (0,), ["read_file"]),
        )
        for binding in result.bindings:
            print(f"    {binding} = {binding.value!r}")
        print(
            "    -> ALL files: the bulk loader consumed the record and "
            "status lists whole,\n       so provenance through it is "
            "honestly coarse (Section 2.3's many-to-many case)"
        )

        print("\nQ3: did the checks gate the load?")
        print("    (lineage of the same row, focused on the checker)")
        result = engine.lineage(
            run_id,
            LineageQuery.create(
                "file_loading", "report", (0,), ["check_record"]
            ),
        )
        for binding in result.bindings:
            print(f"    {binding} = {binding.value!r}")
        print(
            "    -> yes: every loaded row depends on the full status list "
            "the checker produced"
        )


if __name__ == "__main__":
    main()
