#!/usr/bin/env python3
"""Comparing lineage across workflow versions (Section 3.4).

"This generalised form of query is useful for comparing data products
across multiple runs of the same workflow, as well as across runs of
different versions of a workflow."

The scenario: the pathway-lookup service behind the genes2Kegg workflow
is upgraded.  v2 returns re-labelled payloads (same list shapes); v3 also
drops a gene list from the input batch (shape change).  Diffing the
lineage of the same output binding across the three versions shows
exactly which lineage entries changed value and which disappeared.

Run:  python examples/compare_versions.py
"""

from repro import IndexProjEngine, LineageQuery, TraceStore, capture_run
from repro.query.diff import diff_multirun
from repro.testbed.workloads import genes2kegg_workload


def main() -> None:
    workload = genes2kegg_workload()
    flow = workload.flow

    v1_inputs = {"list_of_geneIDList": [["geneA", "geneB"], ["geneC"]]}
    v2_inputs = {"list_of_geneIDList": [["geneA", "geneB-upgraded"], ["geneC"]]}
    v3_inputs = {"list_of_geneIDList": [["geneA", "geneB-upgraded"]]}

    with TraceStore() as store:
        run_ids = {}
        for version, inputs in (
            ("v1", v1_inputs), ("v2", v2_inputs), ("v3", v3_inputs),
        ):
            captured = capture_run(
                flow, inputs, runner=workload.runner(),
                run_id=f"{version}-run",
            )
            store.insert_trace(captured.trace)
            run_ids[version] = captured.run_id
            print(f"{version}: stored run {captured.run_id} "
                  f"({captured.trace.record_count} records)")

        # One query over all three versions: lineage of the whole
        # per-sublist output (empty index = every sublist) relative to the
        # pathway-lookup stage.
        query = LineageQuery.create(
            "genes2kegg", "paths_per_gene", (),
            focus=["get_pathways_by_genes"],
        )
        print(f"\nquery (all versions): {query}")
        engine = IndexProjEngine(store, flow)
        multi = engine.lineage_multirun(run_ids.values(), query)
        print(f"one shared plan; {multi.traversal_seconds * 1000:.2f} ms "
              f"traversal + {multi.lookup_seconds * 1000:.2f} ms lookups\n")

        diffs = diff_multirun(multi, baseline_run=run_ids["v1"])
        for version in ("v2", "v3"):
            diff = diffs[run_ids[version]]
            print(f"--- {version} vs v1: {diff.summary()} ---")
            for change in diff.changed:
                print(f"    changed  {change.key}:")
                print(f"        v1: {change.left_value!r}")
                print(f"        {version}: {change.right_value!r}")
            for binding in diff.only_left:
                print(f"    removed  {binding} = {binding.value!r}")
            for binding in diff.only_right:
                print(f"    added    {binding} = {binding.value!r}")
            print()

    print(
        "reading: v2 changed only binding *values* (the upgraded gene id "
        "flowed through),\nwhile v3 removed the second gene list entirely — "
        "its per-sublist lineage entry\nvanishes from the answer."
    )


if __name__ == "__main__":
    main()
