#!/usr/bin/env python3
"""Debugging a bad output with focused queries, user views, and explain.

The provenance-challenge scenario from the paper's introduction: a
workflow loads and processes data, an output value looks wrong, and the
scientist wants to know which inputs and which stage produced it —
without wading through every intermediate shim.

Tools demonstrated:
  * ``explain`` — the static cost model (how much will each strategy
    touch the trace?);
  * focused queries — lineage relative to the suspect stage only;
  * user views — grouping processors into stages (Zoom-style) and rolling
    the answer up to stage granularity.

Run:  python examples/debugging_with_views.py
"""

from repro import (
    IndexProjEngine,
    LineageQuery,
    TraceStore,
    capture_run,
    propagate_depths,
)
from repro.query.explain import explain
from repro.query.views import UserView, focus_for_groups, group_summary, rollup
from repro.testbed.generator import chain_product_workflow


def main() -> None:
    # A 10-step-per-chain pipeline; pretend CHAIN2_* is the "normalization"
    # stage a colleague recently rewrote.
    flow = chain_product_workflow(10)
    captured = capture_run(flow, {"ListSize": 5})

    # The scientist spots a suspicious output element:
    bad_i, bad_j = 3, 1
    value = captured.outputs["out"][bad_i][bad_j]
    print(f"suspicious output: out[{bad_i}][{bad_j}] = {value!r}\n")

    # Define stage-level views over the pipeline.
    view = UserView(
        "stages",
        {
            "generation": ["LISTGEN_1"],
            "filtering": [f"CHAIN1_{k}" for k in range(10)],
            "normalization": [f"CHAIN2_{k}" for k in range(10)],
        },
    )
    view.validate_against(flow)

    # Ask for lineage relative to the suspect stage only.
    focus = focus_for_groups(view, ["normalization", "generation"])
    query = LineageQuery.create("2TO1_FINAL", "y", [bad_i, bad_j], focus)

    # How expensive will this be?  The static model answers before any
    # trace access happens.
    analysis = propagate_depths(flow)
    explanation = explain(analysis, query)
    print("cost estimate (static, no trace access):")
    print(f"    {explanation.summary()}\n")

    with TraceStore() as store:
        store.insert_trace(captured.trace)
        engine = IndexProjEngine(store, flow, analysis=analysis)
        result = engine.lineage(captured.run_id, query)
        print(f"measured: {result.stats.queries} SQL lookups "
              f"(estimate said {explanation.indexproj_lookups})\n")

        # Roll the processor-level answer up to stages.
        print("lineage by stage:")
        for group, bindings in group_summary(
            rollup(result.bindings, view)
        ).items():
            print(f"    {group}:")
            for binding in bindings:
                print(f"        {binding} = {binding.value!r}")

    print(
        "\nreading: the bad element passed through every normalization "
        f"step as element [{bad_j}],\nand ultimately came from the "
        "generator's size parameter — so if the value is\nwrong, the "
        "rewritten normalization stage transformed element "
        f"[{bad_j}] incorrectly."
    )


if __name__ == "__main__":
    main()
